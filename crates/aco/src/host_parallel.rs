//! A host-thread-parallel ACO scheduler.
//!
//! The paper parallelizes ant construction on a GPU; the same independent-ants
//! observation applies to host threads. This executor runs each
//! iteration's ants across OS threads (crossbeam scoped threads, one chunk
//! of the colony per thread) and merges the iteration winner under a lock.
//!
//! It exists as a correctness cross-check of the parallelization argument
//! (every ant construction is independent given the iteration's pheromone
//! snapshot) and as a practical CPU fallback: on a many-core host it
//! speeds up wall-clock scheduling without any GPU. Results are
//! **deterministic regardless of thread count or interleaving**: ants are
//! seeded by colony index and the winner tie-breaks on that index.

use crate::config::AcoConfig;
use crate::construct::{AntContext, Pass1Ant, Pass2Ant, Pass2Step};
use crate::pheromone::PheromoneTable;
use crate::result::{AcoResult, PassStats};
use crate::sequential::{ant_seed, pass2_target};
use list_sched::{Heuristic, ListScheduler, RegionAnalysis};
use machine_model::{OccupancyLut, OccupancyModel};
use parking_lot::Mutex;
use reg_pressure::RegUniverse;
use sched_ir::{Cycle, Ddg, InstrId, Schedule};

/// Pass-1 winner slot: `(APRP cost, colony index, order)`.
type Pass1Winner = (u64, u32, Vec<InstrId>);

/// Pass-2 winner slot: `(length, colony index, order, issue cycles)`. The
/// `Schedule` itself is materialized once, by the caller, from the cycles.
type Pass2Winner = (u64, u32, Vec<InstrId>, Vec<Cycle>);

/// Whether `(objective, colony index)` beats the current winner. Lower
/// objective wins; the colony index breaks ties so the result is
/// independent of thread scheduling.
fn beats(current: Option<(u64, u32)>, objective: u64, idx: u32) -> bool {
    match current {
        None => true,
        Some((cost, i)) => objective < cost || (objective == cost && idx < i),
    }
}

/// Merges a pass-1 candidate into the shared winner slot. The comparison
/// runs under the lock *before* any materialization: losing ants copy
/// nothing, and a winning ant's order is copied into the slot's existing
/// buffer rather than freshly allocated.
fn merge_pass1(winner: &Mutex<Option<Pass1Winner>>, cost: u64, idx: u32, order: &[InstrId]) {
    let mut w = winner.lock();
    if !beats(w.as_ref().map(|(c, i, _)| (*c, *i)), cost, idx) {
        return;
    }
    match &mut *w {
        Some((c, i, ord)) => {
            *c = cost;
            *i = idx;
            ord.clear();
            ord.extend_from_slice(order);
        }
        slot => *slot = Some((cost, idx, order.to_vec())),
    }
}

/// Merges a pass-2 candidate into the shared winner slot; same
/// compare-before-materialize discipline as [`merge_pass1`].
fn merge_pass2(
    winner: &Mutex<Option<Pass2Winner>>,
    length: u64,
    idx: u32,
    order: &[InstrId],
    cycles: &[Cycle],
) {
    let mut w = winner.lock();
    if !beats(w.as_ref().map(|(l, i, _, _)| (*l, *i)), length, idx) {
        return;
    }
    match &mut *w {
        Some((l, i, ord, cyc)) => {
            *l = length;
            *i = idx;
            ord.clear();
            ord.extend_from_slice(order);
            cyc.clear();
            cyc.extend_from_slice(cycles);
        }
        slot => *slot = Some((length, idx, order.to_vec(), cycles.to_vec())),
    }
}

/// The host-thread-parallel two-pass ACO scheduler.
///
/// # Example
///
/// ```
/// use aco::{AcoConfig, HostParallelScheduler};
/// use machine_model::{OccupancyLut, OccupancyModel};
/// use sched_ir::figure1;
///
/// let ddg = figure1::ddg();
/// let occ = OccupancyModel::unit();
/// let result = HostParallelScheduler::new(AcoConfig::small(1), 2).schedule(&ddg, &occ);
/// result.schedule.validate(&ddg).unwrap();
/// assert_eq!(result.prp[0], 3);
/// ```
#[derive(Debug, Clone)]
pub struct HostParallelScheduler {
    cfg: AcoConfig,
    threads: usize,
}

impl HostParallelScheduler {
    /// Creates a scheduler distributing each iteration's
    /// `cfg.sequential_ants` ants over `threads` host threads.
    pub fn new(cfg: AcoConfig, threads: usize) -> HostParallelScheduler {
        HostParallelScheduler {
            cfg,
            threads: threads.max(1),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcoConfig {
        &self.cfg
    }

    /// Schedules a region, running ant constructions across host threads.
    pub fn schedule(&mut self, ddg: &Ddg, occ: &OccupancyModel) -> AcoResult {
        let analysis = RegionAnalysis::new(ddg);
        let universe = RegUniverse::new(ddg);
        let lut = OccupancyLut::new(occ);
        let ctx = AntContext {
            ddg,
            analysis: &analysis,
            universe: &universe,
            lut: &lut,
            cfg: &self.cfg,
        };

        let initial = ListScheduler::new(Heuristic::AmdMaxOccupancy)
            .schedule_in(ddg, &lut, &analysis, &universe);
        if ddg.len() <= 1 {
            return AcoResult::trivial(ddg, occ, initial, 0.0);
        }

        // ---- Pass 1 ----
        let rp_lb = occ.rp_cost_lb(ddg.rp_lower_bound());
        let mut best_order = initial.order.clone();
        let mut best_cost = occ.rp_cost(initial.prp);
        let mut pheromone = PheromoneTable::new(ddg.len(), self.cfg.initial_pheromone);
        let mut pass1 = PassStats::default();
        if best_cost > rp_lb {
            let budget = self.cfg.termination.budget(ddg.len());
            let mut no_improve = 0u32;
            while pass1.iterations < self.cfg.termination.max_iterations {
                pass1.iterations += 1;
                let winner = self.run_pass1_iteration(&ctx, &pheromone, pass1.iterations);
                let (wcost, worder) = winner.expect("at least one ant per iteration");
                pheromone.evaporate(self.cfg.decay, self.cfg.tau_min);
                pheromone.deposit_order(&worder, self.cfg.deposit, self.cfg.tau_max);
                if wcost < best_cost {
                    best_cost = wcost;
                    best_order = worder;
                    pass1.improved = true;
                    no_improve = 0;
                } else {
                    no_improve += 1;
                }
                if best_cost <= rp_lb {
                    pass1.hit_lb = true;
                    break;
                }
                if no_improve >= budget {
                    break;
                }
            }
        } else {
            pass1.hit_lb = true;
        }
        pass1.best_cost = best_cost;

        // ---- Pass 2 ----
        let mut best_schedule = Schedule::from_order(ddg, &best_order);
        let mut best_length = best_schedule.length();
        let mut best_final_order = best_order.clone();
        let target_cost = pass2_target(&self.cfg, occ, best_cost);
        let len_lb: Cycle = ddg.schedule_length_lb();
        let mut pass2 = PassStats::default();
        let gate = self.cfg.pass2_gate_cycles.max(1) as Cycle;
        if best_length >= len_lb + gate {
            pheromone.reset();
            let mut greedy = Pass2Ant::new(&ctx, self.cfg.heuristic, 0, target_cost, true);
            greedy.set_stall_budget(u32::MAX);
            for h in Heuristic::ALL {
                greedy.reset_with(&ctx, h, 0, true);
                while matches!(
                    greedy.step(&ctx, &pheromone, Some(false)),
                    Pass2Step::Issued { .. } | Pass2Step::Stalled { .. }
                ) {}
                if greedy.finished() && greedy.length() < best_length {
                    let g = greedy.result();
                    best_length = g.length;
                    best_schedule = g.schedule;
                    best_final_order = g.order;
                }
            }
            let budget = self.cfg.termination.budget(ddg.len());
            let mut no_improve = 0u32;
            while pass2.iterations < self.cfg.termination.max_iterations {
                pass2.iterations += 1;
                let winner =
                    self.run_pass2_iteration(&ctx, &pheromone, pass2.iterations, target_cost);
                pheromone.evaporate(self.cfg.decay, self.cfg.tau_min);
                let improved = match winner {
                    Some((wlen, _, worder, wcycles)) => {
                        pheromone.deposit_order(&worder, self.cfg.deposit, self.cfg.tau_max);
                        if (wlen as Cycle) < best_length {
                            best_length = wlen as Cycle;
                            best_schedule = Schedule::from_cycles(wcycles);
                            best_final_order = worder;
                            true
                        } else {
                            false
                        }
                    }
                    None => false,
                };
                if improved {
                    pass2.improved = true;
                    no_improve = 0;
                } else {
                    no_improve += 1;
                }
                if best_length <= len_lb {
                    pass2.hit_lb = true;
                    break;
                }
                if no_improve >= budget {
                    break;
                }
            }
        } else if best_length <= len_lb {
            pass2.hit_lb = true;
        } else {
            pass2.gated = true;
        }
        pass2.best_cost = best_length as u64;

        let prp = reg_pressure::prp_of_order(ddg, &best_final_order);
        AcoResult {
            occupancy: occ.occupancy(prp),
            prp,
            length: best_length,
            order: best_final_order,
            schedule: best_schedule,
            initial,
            pass1,
            pass2,
            ops: 0,
            time_us: 0.0,
        }
    }

    /// Runs one pass-1 iteration's ants across threads; returns the winner.
    ///
    /// Each thread reuses a single [`Pass1Ant`] across its whole chunk of
    /// the colony, and losing ants never clone their order — candidates
    /// are compared under the merge lock first (cost + colony index) and
    /// only an improving ant's order is copied into the slot.
    fn run_pass1_iteration(
        &self,
        ctx: &AntContext<'_>,
        pheromone: &PheromoneTable,
        iteration: u32,
    ) -> Option<(u64, Vec<InstrId>)> {
        let winner: Mutex<Option<Pass1Winner>> = Mutex::new(None);
        let total = self.cfg.sequential_ants;
        let chunk = (total as usize).div_ceil(self.threads) as u32;
        crossbeam::scope(|scope| {
            for t in 0..self.threads as u32 {
                let winner = &winner;
                scope.spawn(move |_| {
                    let lo = t * chunk;
                    let hi = (lo + chunk).min(total);
                    if lo >= hi {
                        return;
                    }
                    let mut ant = Pass1Ant::new(ctx, ctx.cfg.heuristic, 0);
                    for a in lo..hi {
                        ant.reset(ctx, ant_seed(ctx.cfg.seed, 1, iteration, a));
                        while !ant.finished(ctx) {
                            ant.step(ctx, pheromone, None);
                        }
                        merge_pass1(winner, ant.cost(ctx), a, ant.order());
                    }
                });
            }
        })
        .expect("ant threads never panic");
        winner.into_inner().map(|(c, _, o)| (c, o))
    }

    /// Runs one pass-2 iteration's ants across threads; returns the winner.
    /// Same single-ant-per-thread, compare-before-materialize scheme as
    /// [`HostParallelScheduler::run_pass1_iteration`].
    fn run_pass2_iteration(
        &self,
        ctx: &AntContext<'_>,
        pheromone: &PheromoneTable,
        iteration: u32,
        target_cost: u64,
    ) -> Option<Pass2Winner> {
        let winner: Mutex<Option<Pass2Winner>> = Mutex::new(None);
        let total = self.cfg.sequential_ants;
        let chunk = (total as usize).div_ceil(self.threads) as u32;
        crossbeam::scope(|scope| {
            for t in 0..self.threads as u32 {
                let winner = &winner;
                scope.spawn(move |_| {
                    let lo = t * chunk;
                    let hi = (lo + chunk).min(total);
                    if lo >= hi {
                        return;
                    }
                    let mut ant = Pass2Ant::new(ctx, ctx.cfg.heuristic, 0, target_cost, true);
                    for a in lo..hi {
                        // Heuristic varies across the colony as across
                        // wavefront groups.
                        let h = Heuristic::ALL[a as usize % Heuristic::ALL.len()];
                        ant.reset_with(ctx, h, ant_seed(ctx.cfg.seed, 2, iteration, a), true);
                        let finished = loop {
                            match ant.step(ctx, pheromone, None) {
                                Pass2Step::Died => break false,
                                Pass2Step::Finished => break true,
                                Pass2Step::Issued { .. } | Pass2Step::Stalled { .. } => {}
                            }
                        };
                        if finished {
                            merge_pass2(winner, ant.length() as u64, a, ant.order(), ant.cycles());
                        }
                    }
                });
            }
        })
        .expect("ant threads never panic");
        winner.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_and_deterministic_across_thread_counts() {
        let occ = OccupancyModel::vega_like();
        let ddg = workloads::patterns::sized(90, 5);
        let cfg = AcoConfig {
            blocks: 4,
            ..AcoConfig::paper(3)
        };
        let one = HostParallelScheduler::new(cfg, 1).schedule(&ddg, &occ);
        let four = HostParallelScheduler::new(cfg, 4).schedule(&ddg, &occ);
        one.schedule.validate(&ddg).unwrap();
        four.schedule.validate(&ddg).unwrap();
        assert_eq!(
            one.order, four.order,
            "thread count must not change the result"
        );
        assert_eq!(one.length, four.length);
        assert_eq!(one.prp, four.prp);
    }

    #[test]
    fn figure1_optimum_found() {
        let ddg = sched_ir::figure1::ddg();
        let occ = OccupancyModel::unit();
        let r = HostParallelScheduler::new(AcoConfig::small(1), 3).schedule(&ddg, &occ);
        assert_eq!(r.prp[0], 3);
        assert_eq!(r.length, 10);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let s = HostParallelScheduler::new(AcoConfig::small(0), 0);
        assert_eq!(s.threads, 1);
    }

    #[test]
    fn quality_matches_sequential_scheduler() {
        // Same colony, same seeds, same selection rules: the host-parallel
        // pass-1 result must equal the sequential scheduler's.
        use crate::sequential::SequentialScheduler;
        let occ = OccupancyModel::vega_like();
        let ddg = workloads::patterns::sized(80, 21);
        let cfg = AcoConfig {
            blocks: 4,
            ..AcoConfig::paper(9)
        };
        let seq = SequentialScheduler::new(cfg).schedule(&ddg, &occ);
        let par = HostParallelScheduler::new(cfg, 2).schedule(&ddg, &occ);
        assert_eq!(seq.pass1.best_cost, par.pass1.best_cost);
        assert_eq!(seq.pass1.iterations, par.pass1.iterations);
    }
}
