//! The GPU-parallel ACO scheduler (Sections IV-B and V).
//!
//! The scheduling kernel maps **one ant to one GPU thread** and runs one
//! 64-thread wavefront per block (so blocks never need intra-block
//! synchronization barriers beyond lockstep execution). Each kernel launch
//! iterates: *construct schedules in parallel* → *parallel reduction to the
//! iteration winner* → *parallel pheromone update*, until the lower bound
//! is hit or the termination condition fires.
//!
//! Because no GPU is present, the kernel is *simulated*: the 64 ants of
//! each wavefront are stepped in lockstep by host code, and every round is
//! priced on the [`gpu_sim`] cost model — the maximum ready-list scan over
//! the lanes (lockstep), serialized divergent paths (explore vs exploit,
//! issue vs stall), and coalesced vs scattered memory traffic depending on
//! the configured [`gpu_sim::MemLayout`]. The construction *results* are
//! identical to what a real lockstep execution would produce; only the
//! clock is modeled. See DESIGN.md for the substitution rationale.
//!
//! All of the paper's GPU optimizations are implemented as
//! [`crate::GpuTuning`] toggles so the ablation experiments (Tables 4.a,
//! 4.b and 6) can switch them individually:
//!
//! * memory: SoA layout, host-side preallocation, batched transfers, tight
//!   ready-list bounds (Section V-A);
//! * divergence: wavefront-level explore/exploit choice, restricting
//!   optional stalls to a fraction of wavefronts, early wavefront
//!   termination, per-wavefront guiding heuristics (Section V-B).

use crate::config::AcoConfig;
use crate::construct::{AntContext, Pass1Ant, Pass2Ant, Pass2Step};
use crate::pheromone::PheromoneTable;
use crate::result::{AcoResult, PassStats};
use crate::sequential::{ant_seed, pass2_target};
use crate::warm::{WarmStart, WARM_NO_IMPROVE_BUDGET};
use gpu_sim::{GpuSpec, LaunchProfile, MemLayout, WavefrontCost};
use list_sched::{Heuristic, ListScheduler, RegionAnalysis};
use machine_model::{OccupancyLut, OccupancyModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reg_pressure::RegUniverse;
use sched_ir::{Cycle, Ddg, InstrId, Schedule};

/// SIMT steps charged per candidate in a selection scan.
const STEPS_PER_CANDIDATE: u64 = 4;
/// Fixed SIMT steps per construction round.
const STEPS_PER_ROUND: u64 = 8;
/// SIMT steps per candidate on the cheap (stall) path.
const STALL_STEPS_PER_CANDIDATE: u64 = 1;
/// Effective lanes charged for a scattered (AoS) state access: adjacent
/// struct instances share cache lines, so a 64-lane scattered access costs
/// ~16 transactions rather than 64.
const AOS_EFFECTIVE_LANES: u32 = 16;

/// GPU-side observability of one parallel scheduling run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GpuStats {
    /// Setup + kernel profile of the pass-1 launch.
    pub pass1_profile: LaunchProfile,
    /// Setup + kernel profile of the pass-2 launch.
    pub pass2_profile: LaunchProfile,
    /// SIMT steps spent in serialized divergent paths.
    pub divergent_steps: u64,
    /// Total device memory transactions.
    pub mem_transactions: u64,
}

impl GpuStats {
    /// Total modeled GPU wall time, microseconds.
    pub fn total_us(&self) -> f64 {
        self.pass1_profile.total_us() + self.pass2_profile.total_us()
    }
}

/// Outcome of a parallel scheduling run: the ACO result plus GPU
/// observability.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// The scheduling result (same shape as the sequential scheduler's).
    pub result: AcoResult,
    /// GPU time model observations.
    pub gpu: GpuStats,
}

/// The GPU-parallel two-pass ACO scheduler.
///
/// # Example
///
/// ```
/// use aco::{AcoConfig, ParallelScheduler};
/// use machine_model::{OccupancyLut, OccupancyModel};
/// use sched_ir::figure1;
///
/// let ddg = figure1::ddg();
/// let occ = OccupancyModel::vega_like();
/// let out = ParallelScheduler::new(AcoConfig::small(42)).schedule(&ddg, &occ);
/// out.result.schedule.validate(&ddg).unwrap();
/// assert!(out.gpu.total_us() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ParallelScheduler {
    cfg: AcoConfig,
    spec: GpuSpec,
}

impl ParallelScheduler {
    /// Creates a scheduler targeting the default Radeon-VII-like device.
    pub fn new(cfg: AcoConfig) -> ParallelScheduler {
        ParallelScheduler::with_spec(cfg, GpuSpec::radeon_vii())
    }

    /// Creates a scheduler with an explicit device model.
    pub fn with_spec(cfg: AcoConfig, spec: GpuSpec) -> ParallelScheduler {
        ParallelScheduler { cfg, spec }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcoConfig {
        &self.cfg
    }

    /// Schedules a region on the simulated GPU.
    pub fn schedule(&mut self, ddg: &Ddg, occ: &OccupancyModel) -> ParallelOutcome {
        self.schedule_with(ddg, occ, None)
    }

    /// Schedules a region, optionally seeding both launches' pheromone
    /// tables from a [`WarmStart`] hint (see [`crate::warm`]).
    ///
    /// With `warm = None` this is exactly [`ParallelScheduler::schedule`] —
    /// bit for bit. An applicable hint saturates the trail along the hinted
    /// order before each launch and cuts the no-improvement budget to
    /// [`WARM_NO_IMPROVE_BUDGET`]; a size-mismatched hint is ignored.
    pub fn schedule_with(
        &mut self,
        ddg: &Ddg,
        occ: &OccupancyModel,
        warm: Option<&WarmStart>,
    ) -> ParallelOutcome {
        let warm = warm.filter(|w| w.applies_to(ddg));
        let analysis = RegionAnalysis::new(ddg);
        let universe = RegUniverse::new(ddg);
        // Pressure cost of the hinted order against *this* region: the hint
        // is injected as a candidate incumbent in both passes, so a warm
        // result is never lexicographically worse than its seed.
        let warm_cost =
            warm.map(|w| occ.rp_cost(reg_pressure::prp_of_order_in(&universe, w.order())));
        let lut = OccupancyLut::new(occ);
        let ctx = AntContext {
            ddg,
            analysis: &analysis,
            universe: &universe,
            lut: &lut,
            cfg: &self.cfg,
        };

        let initial = ListScheduler::new(Heuristic::AmdMaxOccupancy)
            .schedule_in(ddg, &lut, &analysis, &universe);

        if ddg.len() <= 1 {
            let result = AcoResult::trivial(ddg, occ, initial, 0.0);
            return ParallelOutcome {
                result,
                gpu: GpuStats::default(),
            };
        }

        let mut gpu = GpuStats::default();
        // One pheromone table serves both launches: `reset()` restores the
        // uniform initial level bitwise-identically to a fresh table, so
        // sharing it keeps per-launch allocations constant without changing
        // any result.
        let mut pheromone = PheromoneTable::new(ddg.len(), self.cfg.initial_pheromone);

        // ---- Pass 1 ----
        let rp_lb = occ.rp_cost_lb(ddg.rp_lower_bound());
        let mut best_order = initial.order.clone();
        let mut best_cost = occ.rp_cost(initial.prp);
        if let (Some(w), Some(wc)) = (warm, warm_cost) {
            if wc < best_cost {
                best_cost = wc;
                best_order.clear();
                best_order.extend_from_slice(w.order());
            }
        }
        let mut pass1 = PassStats::default();
        if best_cost > rp_lb {
            let launch = self.run_pass1(
                &ctx,
                &mut pheromone,
                &mut best_order,
                &mut best_cost,
                rp_lb,
                &mut pass1,
                warm,
            );
            gpu.pass1_profile = launch.profile;
            gpu.divergent_steps += launch.divergent_steps;
            gpu.mem_transactions += launch.mem_transactions;
        } else {
            pass1.hit_lb = true;
        }
        pass1.best_cost = best_cost;
        pass1.time_us = gpu.pass1_profile.total_us();

        // ---- Pass 2 ----
        let mut best_schedule = Schedule::from_order(ddg, &best_order);
        let mut best_length = best_schedule.length();
        let mut best_final_order = best_order.clone();
        let target_cost = pass2_target(&self.cfg, occ, best_cost);
        // Hint-as-candidate, length side: if the hinted order is feasible
        // under the pass-2 cost target and packs shorter than the pass-1
        // winner, start pass 2 from it.
        if let (Some(w), Some(wc)) = (warm, warm_cost) {
            if wc <= target_cost {
                let sched = Schedule::from_order(ddg, w.order());
                if sched.length() < best_length {
                    best_length = sched.length();
                    best_final_order.clear();
                    best_final_order.extend_from_slice(w.order());
                    best_schedule = sched;
                }
            }
        }
        let len_lb = ddg.schedule_length_lb();
        let mut pass2 = PassStats::default();
        let gate = self.cfg.pass2_gate_cycles.max(1) as Cycle;
        if best_length >= len_lb + gate {
            let launch = self.run_pass2(
                &ctx,
                &mut pheromone,
                target_cost,
                &mut best_final_order,
                &mut best_schedule,
                &mut best_length,
                len_lb,
                &mut pass2,
                warm,
            );
            gpu.pass2_profile = launch.profile;
            gpu.divergent_steps += launch.divergent_steps;
            gpu.mem_transactions += launch.mem_transactions;
        } else if best_length <= len_lb {
            pass2.hit_lb = true;
        } else {
            pass2.gated = true;
        }
        pass2.best_cost = best_length as u64;
        pass2.time_us = gpu.pass2_profile.total_us();

        let prp = reg_pressure::prp_of_order_in(&universe, &best_final_order);
        let result = AcoResult {
            occupancy: occ.occupancy(prp),
            prp,
            length: best_length,
            order: best_final_order,
            schedule: best_schedule,
            initial,
            pass1,
            pass2,
            ops: 0,
            time_us: gpu.total_us(),
        };
        ParallelOutcome { result, gpu }
    }

    /// Whether wavefront `w` is allowed to insert optional stalls.
    fn wavefront_may_stall(&self, w: u32) -> bool {
        let allowed =
            (self.cfg.blocks as f64 * self.cfg.tuning.stall_wavefront_fraction).round() as u32;
        w < allowed
    }

    /// Guiding heuristic of wavefront `w`.
    fn wavefront_heuristic(&self, w: u32) -> Heuristic {
        if self.cfg.tuning.per_wavefront_heuristics {
            Heuristic::ALL[w as usize % Heuristic::ALL.len()]
        } else {
            self.cfg.heuristic
        }
    }

    /// Models the setup (allocation + host→device copy) of one launch.
    fn setup_profile(&self, ctx: &AntContext<'_>) -> LaunchProfile {
        let t = &self.cfg.tuning;
        let n = ctx.ddg.len() as u64;
        let edges = ctx.ddg.edge_count() as u64;
        let regs = ctx.universe.reg_count() as u64;
        let threads = self.cfg.parallel_ants() as u64;
        let ub = if t.tight_ready_ub {
            ctx.analysis.ready_list_ub as u64
        } else {
            n // the loose bound: every instruction could be ready
        };
        // Shared data: pheromone table, DDG arrays (succ/pred lists with
        // latencies), per-instruction metadata, and ONE template of the
        // initial per-ant state (pressure counters etc.) that the device
        // broadcasts — every ant starts identical, so only one copy
        // crosses the bus.
        let shared = (n + 1) * n * 8 + (n * 16 + edges * 8) + n * 8 + regs * 3 + n * 4;
        // Per-thread state that genuinely differs per ant: ready-list
        // storage, RNG seed, cursors.
        let per_thread = ub * 2 + 48;
        let bytes = shared + per_thread * threads;
        let (device_allocs, host_allocs, copy_calls) = if t.preallocate {
            // One big device block, a handful of host staging arrays.
            (
                1,
                8,
                if t.batched_transfer {
                    4
                } else {
                    24 + threads / 64
                },
            )
        } else {
            // Device-side dynamic allocation per structure group — the slow
            // path the paper explicitly avoids.
            (
                8 + threads / 256,
                8,
                if t.batched_transfer {
                    4
                } else {
                    24 + threads / 64
                },
            )
        };
        LaunchProfile {
            alloc_us: self.spec.alloc_time_us(device_allocs, host_allocs),
            copy_us: self.spec.transfer_time_us(copy_calls, bytes),
            copy_bytes: bytes,
            kernel_us: 0.0,
        }
    }

    /// Per-iteration cost of the reduction + pheromone-update stages,
    /// charged to every wavefront (they all participate).
    fn update_stage_cost(&self, ctx: &AntContext<'_>, wf: &mut WavefrontCost) {
        let entries = ((ctx.ddg.len() + 1) * ctx.ddg.len()) as u64;
        let chunk = entries.div_ceil(self.cfg.parallel_ants() as u64);
        // Tree reduction over the block + global winner check.
        wf.uniform(6 + 4);
        // Each thread evaporates + deposits its pheromone column slice.
        wf.uniform(chunk * 2);
        wf.mem_accesses(chunk, self.cfg.threads_per_block, self.cfg.tuning.layout);
    }

    #[allow(clippy::too_many_arguments)]
    fn run_pass1(
        &self,
        ctx: &AntContext<'_>,
        pheromone: &mut PheromoneTable,
        best_order: &mut Vec<InstrId>,
        best_cost: &mut u64,
        rp_lb: u64,
        stats: &mut PassStats,
        warm: Option<&WarmStart>,
    ) -> LaunchResult {
        let mut profile = self.setup_profile(ctx);
        match warm {
            Some(w) => pheromone.seed_order(w.order(), self.cfg.tau_max),
            None => pheromone.reset(),
        }
        let budget = match warm {
            Some(_) => WARM_NO_IMPROVE_BUDGET,
            None => self.cfg.termination.budget(ctx.ddg.len()),
        };
        let mut no_improve = 0u32;
        let mut kernel_cycles = 0u64;
        let mut divergent_steps = 0u64;
        let mut mem_transactions = 0u64;
        let n = ctx.ddg.len();
        let lanes = self.cfg.threads_per_block;
        let layout = self.cfg.tuning.layout;

        // One persistent lane of ants, reset per wavefront: the simulated
        // kernel allocates its per-thread state once per launch, not once
        // per wavefront per iteration.
        let mut ants: Vec<Pass1Ant<'_>> = (0..lanes)
            .map(|_| Pass1Ant::new(ctx, self.cfg.heuristic, 0))
            .collect();
        // Iteration-winner and per-iteration wavefront-cycle buffers live
        // for the whole launch; each iteration clears and refills them so
        // the loop stays allocation-free.
        let mut winner_cost: Option<u64>;
        let mut winner_order: Vec<InstrId> = Vec::with_capacity(n);
        let mut iter_wf_cycles: Vec<u64> = Vec::with_capacity(self.cfg.blocks as usize);
        while stats.iterations < self.cfg.termination.max_iterations {
            stats.iterations += 1;
            winner_cost = None;
            iter_wf_cycles.clear();
            for w in 0..self.cfg.blocks {
                let mut wf = WavefrontCost::new(&self.spec);
                let mut wf_rng = SmallRng::seed_from_u64(ant_seed(
                    self.cfg.seed ^ 0x5A5A_F00D,
                    1,
                    stats.iterations,
                    w,
                ));
                let h = self.wavefront_heuristic(w);
                for (l, ant) in ants.iter_mut().enumerate() {
                    ant.reset_with(
                        ctx,
                        h,
                        ant_seed(self.cfg.seed, 1, stats.iterations, w * lanes + l as u32),
                    );
                }
                for _step in 0..n {
                    let scan_max = ants.iter().map(|a| a.ready_len() as u64).max().unwrap_or(0);
                    let (explored, mixed) = if self.cfg.tuning.wavefront_level_choice {
                        (Some(wf_rng.gen::<f64>() > self.cfg.q0), false)
                    } else {
                        (None, true)
                    };
                    let mut any_explore = false;
                    let mut any_exploit = false;
                    let mut succ_max = 0u64;
                    for ant in &mut ants {
                        let s = ant.step(ctx, pheromone, explored);
                        succ_max = succ_max.max(s.succ_ops as u64);
                        if s.explored {
                            any_explore = true;
                        } else {
                            any_exploit = true;
                        }
                    }
                    let select_steps = scan_max * STEPS_PER_CANDIDATE + STEPS_PER_ROUND;
                    if mixed && any_explore && any_exploit {
                        // Thread-level choice: both selection formulas are
                        // traversed serially by the wavefront.
                        wf.diverge(&[select_steps, select_steps]);
                    } else {
                        wf.uniform(select_steps);
                    }
                    wf.uniform(succ_max * 2);
                    self.state_accesses(&mut wf, scan_max + succ_max, lanes, layout);
                }
                // Reduce to the wavefront's first minimum-cost lane, then
                // materialize the order only if it beats the running
                // winner — losing lanes clone nothing.
                let mut wf_best: Option<(u64, usize)> = None;
                for (l, ant) in ants.iter().enumerate() {
                    let cost = ant.cost(ctx);
                    if wf_best.is_none_or(|(c, _)| cost < c) {
                        wf_best = Some((cost, l));
                    }
                }
                if let Some((cost, l)) = wf_best {
                    if winner_cost.is_none_or(|c| cost < c) {
                        winner_cost = Some(cost);
                        winner_order.clear();
                        winner_order.extend_from_slice(ants[l].order());
                    }
                }
                self.update_stage_cost(ctx, &mut wf);
                divergent_steps += wf.divergent_steps();
                mem_transactions += wf.mem_transactions();
                iter_wf_cycles.push(wf.cycles());
            }
            kernel_cycles += self.spec.kernel_cycles(&iter_wf_cycles);

            let wcost = winner_cost.expect("at least one ant");
            pheromone.evaporate(self.cfg.decay, self.cfg.tau_min);
            pheromone.deposit_order(&winner_order, self.cfg.deposit, self.cfg.tau_max);
            if wcost < *best_cost {
                *best_cost = wcost;
                best_order.clear();
                best_order.extend_from_slice(&winner_order);
                stats.improved = true;
                no_improve = 0;
            } else {
                no_improve += 1;
            }
            if *best_cost <= rp_lb {
                stats.hit_lb = true;
                break;
            }
            if no_improve >= budget {
                break;
            }
        }
        profile.kernel_us = self.spec.launch_overhead_us + self.spec.cycles_to_us(kernel_cycles);
        LaunchResult {
            profile,
            divergent_steps,
            mem_transactions,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_pass2(
        &self,
        ctx: &AntContext<'_>,
        pheromone: &mut PheromoneTable,
        target_cost: u64,
        best_order: &mut Vec<InstrId>,
        best_schedule: &mut Schedule,
        best_length: &mut Cycle,
        len_lb: Cycle,
        stats: &mut PassStats,
        warm: Option<&WarmStart>,
    ) -> LaunchResult {
        let mut profile = self.setup_profile(ctx);
        match warm {
            Some(w) => pheromone.seed_order(w.order(), self.cfg.tau_max),
            None => pheromone.reset(),
        }
        // The best schedule is kept as a raw cycle vector for the whole
        // launch and materialized into a `Schedule` exactly once at the end
        // (`from_cycles` moves the buffer), so improvements never allocate.
        let mut best_cycles: Vec<Cycle> = Vec::with_capacity(ctx.ddg.len());
        best_cycles.extend_from_slice(best_schedule.cycles());
        // Host-side constraint-respecting greedies seed the ILP pass (the
        // same deterministic exploit-only constructions the sequential
        // scheduler uses); different heuristics survive different binds.
        let mut greedy = Pass2Ant::new(ctx, self.cfg.heuristic, 0, target_cost, true);
        greedy.set_stall_budget(u32::MAX);
        for h in Heuristic::ALL {
            greedy.reset_with(ctx, h, 0, true);
            while matches!(
                greedy.step(ctx, pheromone, Some(false)),
                Pass2Step::Issued { .. } | Pass2Step::Stalled { .. }
            ) {}
            if greedy.finished() && greedy.length() < *best_length {
                *best_length = greedy.length();
                best_order.clear();
                best_order.extend_from_slice(greedy.order());
                best_cycles.clear();
                best_cycles.extend_from_slice(greedy.cycles());
            }
        }
        let budget = match warm {
            Some(_) => WARM_NO_IMPROVE_BUDGET,
            None => self.cfg.termination.budget(ctx.ddg.len()),
        };
        let mut no_improve = 0u32;
        let mut kernel_cycles = 0u64;
        let mut divergent_steps = 0u64;
        let mut mem_transactions = 0u64;
        let lanes = self.cfg.threads_per_block;
        let layout = self.cfg.tuning.layout;
        let round_cap = 4 * ctx.ddg.len() as u64 + 64;

        // One persistent lane of ants, reset per wavefront (heuristic and
        // stall permission rotate per wavefront; the target cost is fixed
        // for the whole launch).
        let mut ants: Vec<Pass2Ant<'_>> = (0..lanes)
            .map(|_| Pass2Ant::new(ctx, self.cfg.heuristic, 0, target_cost, true))
            .collect();
        // Launch-lifetime iteration-winner buffers (see run_pass1).
        let mut winner_len: Option<Cycle>;
        let mut winner_order: Vec<InstrId> = Vec::with_capacity(ctx.ddg.len());
        let mut winner_cycles: Vec<Cycle> = Vec::with_capacity(ctx.ddg.len());
        let mut iter_wf_cycles: Vec<u64> = Vec::with_capacity(self.cfg.blocks as usize);
        while stats.iterations < self.cfg.termination.max_iterations {
            stats.iterations += 1;
            winner_len = None;
            iter_wf_cycles.clear();
            for w in 0..self.cfg.blocks {
                let mut wf = WavefrontCost::new(&self.spec);
                let mut wf_rng = SmallRng::seed_from_u64(ant_seed(
                    self.cfg.seed ^ 0x5A5A_F00D,
                    2,
                    stats.iterations,
                    w,
                ));
                let h = self.wavefront_heuristic(w);
                let may_stall = self.wavefront_may_stall(w);
                for (l, ant) in ants.iter_mut().enumerate() {
                    ant.reset_with(
                        ctx,
                        h,
                        ant_seed(self.cfg.seed, 2, stats.iterations, w * lanes + l as u32),
                        may_stall,
                    );
                }
                let mut rounds = 0u64;
                while ants.iter().any(|a| a.running()) && rounds < round_cap {
                    rounds += 1;
                    let scan_max = ants
                        .iter()
                        .filter(|a| a.running())
                        .map(|a| a.ready_len() as u64)
                        .max()
                        .unwrap_or(0);
                    let explored = if self.cfg.tuning.wavefront_level_choice {
                        Some(wf_rng.gen::<f64>() > self.cfg.q0)
                    } else {
                        None
                    };
                    let mut issued_exploit = false;
                    let mut issued_explore = false;
                    let mut stalled = false;
                    let mut finished_now = false;
                    let mut succ_max = 0u64;
                    for ant in &mut ants {
                        if !ant.running() {
                            continue;
                        }
                        match ant.step(ctx, pheromone, explored) {
                            Pass2Step::Issued {
                                succ_ops,
                                explored: e,
                                ..
                            } => {
                                succ_max = succ_max.max(succ_ops as u64);
                                if e {
                                    issued_explore = true;
                                } else {
                                    issued_exploit = true;
                                }
                                if ant.finished() {
                                    finished_now = true;
                                }
                            }
                            Pass2Step::Stalled { .. } => stalled = true,
                            Pass2Step::Died => {}
                            Pass2Step::Finished => finished_now = true,
                        }
                    }
                    // Divergent paths of this round: the two selection
                    // formulas and the cheap stall path serialize.
                    // Pass-2 selection also runs the pressure-constraint
                    // check per candidate; the stall path rescans the ready
                    // list for issuability and arrival times.
                    let select_steps = scan_max * (STEPS_PER_CANDIDATE + 2) + STEPS_PER_ROUND;
                    let stall_steps = scan_max * (STALL_STEPS_PER_CANDIDATE + 1) + 4;
                    let mut paths = [0u64; 3];
                    let mut np = 0;
                    if issued_exploit {
                        paths[np] = select_steps;
                        np += 1;
                    }
                    if issued_explore {
                        paths[np] = select_steps;
                        np += 1;
                    }
                    if stalled {
                        paths[np] = stall_steps;
                        np += 1;
                    }
                    if np == 0 {
                        paths[0] = 2;
                        np = 1;
                    }
                    wf.diverge(&paths[..np]);
                    wf.uniform(succ_max * 2);
                    // Pass-2 lanes sit at different cycles of different-
                    // length schedules, so their state accesses spread over
                    // several times the address range of the aligned pass-1
                    // case and coalesce far worse.
                    self.state_accesses(&mut wf, 4 * (scan_max + succ_max), lanes, layout);

                    if finished_now && self.cfg.tuning.early_wavefront_termination {
                        // The first finisher has the fewest cycles; later
                        // finishers cannot win the iteration (Section V-B).
                        for ant in &mut ants {
                            ant.kill();
                        }
                        break;
                    }
                }
                // First minimum-length finisher of the wavefront, then
                // materialize only on global improvement.
                let mut wf_best: Option<(Cycle, usize)> = None;
                for (l, ant) in ants.iter().enumerate() {
                    if ant.finished() {
                        let len = ant.length();
                        if wf_best.is_none_or(|(bl, _)| len < bl) {
                            wf_best = Some((len, l));
                        }
                    }
                }
                if let Some((len, l)) = wf_best {
                    if winner_len.is_none_or(|wl| len < wl) {
                        winner_len = Some(len);
                        winner_order.clear();
                        winner_order.extend_from_slice(ants[l].order());
                        winner_cycles.clear();
                        winner_cycles.extend_from_slice(ants[l].cycles());
                    }
                }
                self.update_stage_cost(ctx, &mut wf);
                divergent_steps += wf.divergent_steps();
                mem_transactions += wf.mem_transactions();
                iter_wf_cycles.push(wf.cycles());
            }
            kernel_cycles += self.spec.kernel_cycles(&iter_wf_cycles);

            pheromone.evaporate(self.cfg.decay, self.cfg.tau_min);
            let improved = match winner_len {
                Some(wlen) => {
                    pheromone.deposit_order(&winner_order, self.cfg.deposit, self.cfg.tau_max);
                    if wlen < *best_length {
                        *best_length = wlen;
                        best_cycles.clone_from(&winner_cycles);
                        best_order.clear();
                        best_order.extend_from_slice(&winner_order);
                        true
                    } else {
                        false
                    }
                }
                None => false,
            };
            if improved {
                stats.improved = true;
                no_improve = 0;
            } else {
                no_improve += 1;
            }
            if *best_length <= len_lb {
                stats.hit_lb = true;
                break;
            }
            if no_improve >= budget {
                break;
            }
        }
        // The single materialization of the launch: `from_cycles` moves the
        // buffer, so an unimproved launch reproduces the incoming schedule
        // bit for bit without copying.
        *best_schedule = Schedule::from_cycles(best_cycles);
        profile.kernel_us = self.spec.launch_overhead_us + self.spec.cycles_to_us(kernel_cycles);
        LaunchResult {
            profile,
            divergent_steps,
            mem_transactions,
        }
    }

    /// Charges the per-round state traffic (ready-list reads/writes,
    /// pressure counters, successor lists) under the configured layout.
    fn state_accesses(&self, wf: &mut WavefrontCost, accesses: u64, lanes: u32, layout: MemLayout) {
        match layout {
            MemLayout::Soa => wf.mem_accesses(accesses, lanes, MemLayout::Soa),
            MemLayout::Aos => {
                wf.mem_accesses(accesses, lanes.min(AOS_EFFECTIVE_LANES), MemLayout::Aos)
            }
        }
    }
}

/// Internal: cost observations of one launch.
struct LaunchResult {
    profile: LaunchProfile,
    divergent_steps: u64,
    mem_transactions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuTuning;

    fn small_cfg(seed: u64) -> AcoConfig {
        AcoConfig {
            blocks: 8,
            ..AcoConfig::paper(seed)
        }
    }

    #[test]
    fn produces_valid_schedules_on_mixed_regions() {
        let occ = OccupancyModel::vega_like();
        for seed in 0..4u64 {
            let ddg = workloads::patterns::sized(40 + 20 * seed as usize, seed);
            let out = ParallelScheduler::new(small_cfg(seed)).schedule(&ddg, &occ);
            out.result.schedule.validate(&ddg).unwrap();
            assert!(out.gpu.total_us() > 0.0 || out.result.pass1.hit_lb);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let ddg = workloads::patterns::sized(60, 5);
        let occ = OccupancyModel::vega_like();
        let a = ParallelScheduler::new(small_cfg(3)).schedule(&ddg, &occ);
        let b = ParallelScheduler::new(small_cfg(3)).schedule(&ddg, &occ);
        assert_eq!(a.result.order, b.result.order);
        assert_eq!(a.gpu, b.gpu);
    }

    #[test]
    fn quality_not_worse_than_initial_heuristic() {
        let occ = OccupancyModel::vega_like();
        for seed in 0..4u64 {
            let ddg = workloads::patterns::sized(70, 100 + seed);
            let out = ParallelScheduler::new(small_cfg(seed)).schedule(&ddg, &occ);
            assert!(
                occ.rp_cost(out.result.prp) <= occ.rp_cost(out.result.initial.prp),
                "seed {seed}: pressure cost regressed"
            );
        }
    }

    #[test]
    fn schedule_with_none_is_bitwise_schedule() {
        let ddg = workloads::patterns::sized(60, 12);
        let occ = OccupancyModel::vega_like();
        let cold = ParallelScheduler::new(small_cfg(6)).schedule(&ddg, &occ);
        let explicit = ParallelScheduler::new(small_cfg(6)).schedule_with(&ddg, &occ, None);
        assert_eq!(cold.result.order, explicit.result.order);
        assert_eq!(cold.result.schedule, explicit.result.schedule);
        assert_eq!(cold.gpu, explicit.gpu);
    }

    #[test]
    fn warm_start_never_degrades_and_saves_iterations() {
        use crate::warm::WarmStart;
        let occ = OccupancyModel::vega_like();
        let mut saved_any = false;
        for seed in 0..5u64 {
            let ddg = workloads::patterns::sized(60 + 15 * (seed as usize % 3), 50 + seed);
            let mut cfg = small_cfg(seed);
            cfg.pass2_gate_cycles = 1;
            let cold = ParallelScheduler::new(cfg).schedule(&ddg, &occ).result;
            let hint = WarmStart::new(cold.order.clone()).unwrap();
            let warm = ParallelScheduler::new(cfg)
                .schedule_with(&ddg, &occ, Some(&hint))
                .result;
            warm.schedule.validate(&ddg).unwrap();
            assert!(
                occ.rp_cost(warm.prp) <= occ.rp_cost(cold.prp),
                "seed {seed}: warm start degraded pressure cost"
            );
            if occ.rp_cost(warm.prp) == occ.rp_cost(cold.prp) {
                assert!(
                    warm.length <= cold.length,
                    "seed {seed}: warm start degraded length at equal cost"
                );
            }
            let cold_iters = cold.pass1.iterations + cold.pass2.iterations;
            let warm_iters = warm.pass1.iterations + warm.pass2.iterations;
            assert!(
                warm_iters <= cold_iters,
                "seed {seed}: warm start cost iterations ({warm_iters} vs {cold_iters})"
            );
            saved_any |= warm_iters < cold_iters;
        }
        assert!(
            saved_any,
            "warm starts must save iterations on at least one region"
        );
    }

    #[test]
    fn memory_optimizations_reduce_gpu_time() {
        let ddg = workloads::patterns::sized(120, 9);
        let occ = OccupancyModel::vega_like();
        let mut opt_cfg = small_cfg(1);
        opt_cfg.tuning = GpuTuning::optimized();
        let mut unopt_cfg = small_cfg(1);
        unopt_cfg.tuning = GpuTuning::optimized().memory_unoptimized();
        let opt = ParallelScheduler::new(opt_cfg).schedule(&ddg, &occ);
        let unopt = ParallelScheduler::new(unopt_cfg).schedule(&ddg, &occ);
        assert!(
            unopt.gpu.total_us() > 2.0 * opt.gpu.total_us(),
            "memory optimizations should give a large win: opt={:.1}us unopt={:.1}us",
            opt.gpu.total_us(),
            unopt.gpu.total_us()
        );
    }

    #[test]
    fn divergence_optimizations_reduce_gpu_time() {
        let ddg = workloads::patterns::sized(120, 5);
        let occ = OccupancyModel::vega_like();
        let mut opt_cfg = small_cfg(1);
        opt_cfg.tuning = GpuTuning::optimized();
        let mut unopt_cfg = small_cfg(1);
        unopt_cfg.tuning = GpuTuning::optimized().divergence_unoptimized();
        let opt = ParallelScheduler::new(opt_cfg).schedule(&ddg, &occ);
        let unopt = ParallelScheduler::new(unopt_cfg).schedule(&ddg, &occ);
        assert!(
            unopt.gpu.divergent_steps > opt.gpu.divergent_steps,
            "divergence optimizations should reduce serialized steps"
        );
    }

    #[test]
    fn figure1_reaches_paper_optimum() {
        let ddg = sched_ir::figure1::ddg();
        let occ = OccupancyModel::unit();
        // Randomized search: any seed reaches the optimal PRP; this seed
        // also reaches the paper's optimal 10-cycle schedule within the
        // tiny-region iteration budget.
        let out = ParallelScheduler::new(small_cfg(10)).schedule(&ddg, &occ);
        assert_eq!(out.result.prp[0], 3);
        assert_eq!(out.result.length, 10);
    }

    #[test]
    fn trivial_region_needs_no_gpu() {
        use sched_ir::DdgBuilder;
        let mut b = DdgBuilder::new();
        b.instr("one", [], []);
        let ddg = b.build().unwrap();
        let occ = OccupancyModel::vega_like();
        let out = ParallelScheduler::new(small_cfg(0)).schedule(&ddg, &occ);
        assert_eq!(out.gpu, GpuStats::default());
        assert_eq!(out.result.length, 1);
    }

    #[test]
    fn stall_fraction_controls_which_wavefronts_stall() {
        let mut cfg = small_cfg(0);
        cfg.tuning.stall_wavefront_fraction = 0.25;
        let s = ParallelScheduler::new(cfg);
        assert!(s.wavefront_may_stall(0));
        assert!(s.wavefront_may_stall(1));
        assert!(!s.wavefront_may_stall(2));
        assert!(!s.wavefront_may_stall(7));
        let mut cfg = small_cfg(0);
        cfg.tuning.stall_wavefront_fraction = 0.0;
        assert!(!ParallelScheduler::new(cfg).wavefront_may_stall(0));
        let mut cfg = small_cfg(0);
        cfg.tuning.stall_wavefront_fraction = 1.0;
        assert!(ParallelScheduler::new(cfg).wavefront_may_stall(7));
    }

    #[test]
    fn per_wavefront_heuristics_rotate() {
        let mut cfg = small_cfg(0);
        cfg.tuning.per_wavefront_heuristics = true;
        let s = ParallelScheduler::new(cfg);
        let hs: Vec<Heuristic> = (0..6).map(|w| s.wavefront_heuristic(w)).collect();
        assert_eq!(hs[0], hs[3]);
        assert_ne!(hs[0], hs[1]);
        assert_ne!(hs[1], hs[2]);
        let mut cfg = small_cfg(0);
        cfg.tuning.per_wavefront_heuristics = false;
        cfg.heuristic = Heuristic::CriticalPath;
        let s = ParallelScheduler::new(cfg);
        assert!((0..6).all(|w| s.wavefront_heuristic(w) == Heuristic::CriticalPath));
    }

    #[test]
    fn tight_ready_ub_reduces_copy_bytes() {
        let ddg = workloads::patterns::sized(150, 3);
        let occ = OccupancyLut::new(&OccupancyModel::vega_like());
        let analysis = list_sched::RegionAnalysis::new(&ddg);
        let universe = reg_pressure::RegUniverse::new(&ddg);
        let mut cfg = small_cfg(0);
        let ctx = AntContext {
            ddg: &ddg,
            analysis: &analysis,
            universe: &universe,
            lut: &occ,
            cfg: &cfg,
        };
        let tight = ParallelScheduler::new(cfg).setup_profile(&ctx);
        cfg.tuning.tight_ready_ub = false;
        let ctx = AntContext {
            ddg: &ddg,
            analysis: &analysis,
            universe: &universe,
            lut: &occ,
            cfg: &cfg,
        };
        let loose = ParallelScheduler::new(cfg).setup_profile(&ctx);
        assert!(loose.copy_us > tight.copy_us, "loose UB copies more bytes");
    }
}

/// Outcome of a batched multi-region launch (see
/// [`ParallelScheduler::schedule_batch`]).
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-region outcomes, in input order (same schedules a per-region
    /// launch with the same per-region colony would produce).
    pub outcomes: Vec<ParallelOutcome>,
    /// Total modeled GPU time if each region were launched separately with
    /// the same split colonies, microseconds.
    pub individual_us: f64,
    /// Modeled GPU time of the batched launches, microseconds: one
    /// allocation, one batched transfer and one cooperative kernel per
    /// pass, with the regions' wavefront groups running concurrently.
    pub batched_us: f64,
    /// The shared launch profile of each pass (zero for a pass no region
    /// ran). `batched_us` is the sum of their totals.
    pub pass_profiles: [LaunchProfile; 2],
}

/// Splits a colony's block budget across `k` batched regions: every region
/// gets `total / k` blocks and the first `total % k` regions one extra, so
/// the group uses exactly `total` blocks and never oversubscribes the
/// device the colony was sized for.
///
/// # Panics
///
/// Panics when `k == 0` or `k > total` (some region would get no wavefront
/// group at all); the pipeline's batch planner never forms such groups.
pub fn batch_block_split(total: u32, k: u32) -> Vec<u32> {
    assert!(k > 0, "a batch needs at least one region");
    assert!(
        k <= total,
        "batch of {k} regions exceeds the {total}-block colony budget; \
         split the group instead of oversubscribing the device"
    );
    let base = total / k;
    let rem = total % k;
    (0..k).map(|i| base + u32::from(i < rem)).collect()
}

impl ParallelScheduler {
    /// **Future-work extension (Section VII):** schedules several regions
    /// in one cooperative kernel launch, splitting the colony's blocks
    /// across regions.
    ///
    /// The paper's conclusion proposes "scheduling multiple regions in
    /// parallel" to further cut compile time: small regions leave most of
    /// the GPU idle, and their launch/copy overheads dominate (Table 3's
    /// 1-49 band). Batching shares one launch, one allocation, and one
    /// batched host→device transfer across the whole group, and the
    /// per-region wavefront groups execute concurrently, so the kernel
    /// lasts only as long as its slowest region.
    ///
    /// Construction results are identical to per-region launches with the
    /// same split colony (see [`batch_block_split`]); only the time model
    /// differs.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is empty or holds more regions than the colony
    /// has blocks — the group's wavefront groups must fit the configured
    /// colony (`Σ split blocks = cfg.blocks`), so oversized groups have to
    /// be split by the caller (the pipeline's batch planner does).
    pub fn schedule_batch(&mut self, regions: &[&Ddg], occ: &OccupancyModel) -> BatchOutcome {
        assert!(!regions.is_empty(), "a batch needs at least one region");
        let split = batch_block_split(self.cfg.blocks, regions.len() as u32);
        let mut outcomes = Vec::with_capacity(regions.len());
        for (ddg, &blocks) in regions.iter().zip(&split) {
            let cfg = AcoConfig { blocks, ..self.cfg };
            outcomes.push(ParallelScheduler::with_spec(cfg, self.spec).schedule(ddg, occ));
        }
        let individual_us: f64 = outcomes.iter().map(|o| o.gpu.total_us()).sum();

        // Batched model, per pass: the regions' wavefront groups run
        // concurrently (Σ split blocks = the configured colony, which fits
        // the device), so the cooperative kernel drains when the slowest
        // region's group finishes. Setup is shared: one device allocation
        // with per-region host staging, and one batch of 4 transfer calls
        // moving the group's total byte volume (recomputed from the bytes,
        // not patched out of the per-region call counts — regions profiled
        // with `batched_transfer: false` charged `24 + threads/64` calls
        // each, all of which collapse here).
        let mut pass_profiles = [LaunchProfile::default(); 2];
        for (pass, shared) in pass_profiles.iter_mut().enumerate() {
            let active: Vec<&LaunchProfile> = outcomes
                .iter()
                .map(|o| {
                    if pass == 0 {
                        &o.gpu.pass1_profile
                    } else {
                        &o.gpu.pass2_profile
                    }
                })
                .filter(|p| p.total_us() > 0.0)
                .collect();
            *shared = self
                .spec
                .shared_launch_profile(&active, 8 * active.len() as u64, 4);
        }
        let batched_us = pass_profiles.iter().map(LaunchProfile::total_us).sum();
        BatchOutcome {
            outcomes,
            individual_us,
            batched_us,
            pass_profiles,
        }
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;

    #[test]
    fn batching_regions_saves_gpu_time() {
        let occ = OccupancyModel::vega_like();
        let regions: Vec<_> = (0..6u64)
            .map(|s| workloads::patterns::sized(60, 600 + s))
            .collect();
        let refs: Vec<&Ddg> = regions.iter().collect();
        let mut cfg = AcoConfig::paper(1);
        cfg.blocks = 24;
        let batch = ParallelScheduler::new(cfg).schedule_batch(&refs, &occ);
        assert_eq!(batch.outcomes.len(), 6);
        for (o, ddg) in batch.outcomes.iter().zip(&regions) {
            o.result.schedule.validate(ddg).unwrap();
        }
        if batch.individual_us > 0.0 {
            assert!(
                batch.batched_us < batch.individual_us,
                "batching must save time: batched {:.0} vs individual {:.0}",
                batch.batched_us,
                batch.individual_us
            );
        }
    }

    #[test]
    fn batch_results_equal_split_colony_runs() {
        let occ = OccupancyModel::vega_like();
        let regions: Vec<_> = (0..3u64)
            .map(|s| workloads::patterns::sized(50, 700 + s))
            .collect();
        let refs: Vec<&Ddg> = regions.iter().collect();
        let mut cfg = AcoConfig::paper(2);
        // 14 blocks over 3 regions: remainder distribution gives 5, 5, 4.
        cfg.blocks = 14;
        let split = batch_block_split(cfg.blocks, 3);
        assert_eq!(split, vec![5, 5, 4]);
        let batch = ParallelScheduler::new(cfg).schedule_batch(&refs, &occ);
        for ((o, ddg), &blocks) in batch.outcomes.iter().zip(&regions).zip(&split) {
            let solo = ParallelScheduler::new(AcoConfig { blocks, ..cfg }).schedule(ddg, &occ);
            // Bitwise-identical to the solo run with the same split colony:
            // the schedule, its claims, and the per-region GPU observations.
            assert_eq!(
                o.result.order, solo.result.order,
                "batching must not change results"
            );
            assert_eq!(o.result.schedule, solo.result.schedule);
            assert_eq!(o.result.prp, solo.result.prp);
            assert_eq!(o.result.length, solo.result.length);
            assert_eq!(o.gpu, solo.gpu);
        }
    }

    #[test]
    fn block_split_distributes_remainder_within_budget() {
        assert_eq!(batch_block_split(10, 3), vec![4, 3, 3]);
        assert_eq!(batch_block_split(8, 8), vec![1; 8]);
        assert_eq!(batch_block_split(7, 2), vec![4, 3]);
        for (total, k) in [(32u32, 5u32), (180, 7), (16, 16), (9, 4)] {
            let split = batch_block_split(total, k);
            assert_eq!(split.iter().sum::<u32>(), total, "budget must be exact");
            assert!(split.iter().all(|&b| b >= 1));
            assert!(split.windows(2).all(|w| w[0] >= w[1]), "extras go first");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the 4-block colony budget")]
    fn oversized_batch_panics_instead_of_oversubscribing() {
        let occ = OccupancyModel::vega_like();
        let regions: Vec<_> = (0..6u64)
            .map(|s| workloads::patterns::sized(20, 800 + s))
            .collect();
        let refs: Vec<&Ddg> = regions.iter().collect();
        let mut cfg = AcoConfig::paper(0);
        cfg.blocks = 4;
        let _ = ParallelScheduler::new(cfg).schedule_batch(&refs, &occ);
    }

    #[test]
    fn single_region_batch_matches_solo_cost() {
        // A batch of one region shares nothing: with the default batched
        // transfers the shared-launch model must collapse to the solo one.
        let occ = OccupancyModel::vega_like();
        let ddg = workloads::patterns::sized(60, 901);
        let mut cfg = AcoConfig::paper(3);
        cfg.blocks = 8;
        let batch = ParallelScheduler::new(cfg).schedule_batch(&[&ddg], &occ);
        assert_eq!(batch.outcomes.len(), 1);
        assert!(
            (batch.batched_us - batch.individual_us).abs() < 1e-9,
            "single-region batch must cost the solo time: batched {} vs solo {}",
            batch.batched_us,
            batch.individual_us
        );
    }

    #[test]
    fn gated_pass2_contributes_no_shared_pass2_launch() {
        let occ = OccupancyModel::vega_like();
        let regions: Vec<_> = (0..3u64)
            .map(|s| workloads::patterns::sized(40, 910 + s))
            .collect();
        let refs: Vec<&Ddg> = regions.iter().collect();
        let mut cfg = AcoConfig::paper(4);
        cfg.blocks = 12;
        // Gate pass 2 off everywhere: its shared profile must stay empty
        // and the batched time must only price the pass-1 launch.
        cfg.pass2_gate_cycles = 100_000;
        let batch = ParallelScheduler::new(cfg).schedule_batch(&refs, &occ);
        for o in &batch.outcomes {
            assert_eq!(o.gpu.pass2_profile, LaunchProfile::default());
        }
        assert_eq!(batch.pass_profiles[1], LaunchProfile::default());
        assert!(
            (batch.batched_us - batch.pass_profiles[0].total_us()).abs() < 1e-12,
            "only pass 1 may be priced when pass 2 is gated off"
        );
    }

    #[test]
    fn trivial_region_in_batch_is_free() {
        use sched_ir::DdgBuilder;
        let occ = OccupancyModel::vega_like();
        let mut b = DdgBuilder::new();
        b.instr("one", [], []);
        let trivial = b.build().unwrap();
        let real = workloads::patterns::sized(50, 920);
        let mut cfg = AcoConfig::paper(5);
        cfg.blocks = 8;
        let batch = ParallelScheduler::new(cfg).schedule_batch(&[&trivial, &real], &occ);
        assert_eq!(batch.outcomes[0].gpu, GpuStats::default());
        // The trivial region joins neither shared launch, so the batch
        // costs exactly what the real region's solo split run costs.
        let solo = ParallelScheduler::new(AcoConfig { blocks: 4, ..cfg }).schedule(&real, &occ);
        assert!((batch.individual_us - solo.gpu.total_us()).abs() < 1e-12);
    }

    #[test]
    fn batched_time_bounded_below_by_slowest_kernels() {
        // Per pass, the cooperative kernel cannot beat its slowest region's
        // kernel time (one launch overhead + the longest kernel body).
        let occ = OccupancyModel::vega_like();
        let regions: Vec<_> = (0..4u64)
            .map(|s| workloads::patterns::sized(30 + 30 * s as usize, 930 + s))
            .collect();
        let refs: Vec<&Ddg> = regions.iter().collect();
        let mut cfg = AcoConfig::paper(6);
        cfg.blocks = 16;
        cfg.pass2_gate_cycles = 1;
        let batch = ParallelScheduler::new(cfg).schedule_batch(&refs, &occ);
        let lower_bound: f64 = (0..2)
            .map(|pass| {
                batch
                    .outcomes
                    .iter()
                    .map(|o| {
                        let p = if pass == 0 {
                            &o.gpu.pass1_profile
                        } else {
                            &o.gpu.pass2_profile
                        };
                        if p.total_us() > 0.0 {
                            p.kernel_us
                        } else {
                            0.0
                        }
                    })
                    .fold(0.0f64, f64::max)
            })
            .sum();
        assert!(lower_bound > 0.0);
        assert!(
            batch.batched_us >= lower_bound,
            "batched_us {} below the launch + slowest-kernel bound {}",
            batch.batched_us,
            lower_bound
        );
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn empty_batch_panics() {
        let occ = OccupancyModel::vega_like();
        let _ = ParallelScheduler::new(AcoConfig::small(0)).schedule_batch(&[], &occ);
    }
}
