//! The sequential (CPU) two-pass ACO scheduler of Shobaki et al. 2022,
//! which the paper parallelizes.

use crate::config::AcoConfig;
use crate::construct::{AntContext, Pass1Ant, Pass2Ant, Pass2Step};
use crate::pheromone::PheromoneTable;
use crate::result::{AcoResult, PassStats};
use crate::warm::{WarmStart, WARM_NO_IMPROVE_BUDGET};
use gpu_sim::CpuSpec;
use list_sched::{Heuristic, ListScheduler, RegionAnalysis};
use machine_model::{OccupancyLut, OccupancyModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reg_pressure::RegUniverse;
use sched_ir::{Cycle, Ddg, InstrId, Schedule};

/// Abstract operations per pheromone-table entry touched during
/// evaporation + deposit.
const OPS_PER_PHEROMONE_ENTRY: u64 = 1;

/// Pass-2 target cost, relaxed to the configured kernel occupancy cap:
/// pressure below the cap's APRP band buys nothing kernel-wide.
///
/// Public so an external verifier can recompute the two-pass invariant
/// (final pressure cost ≤ this target) without reaching into scheduler
/// internals.
pub fn pass2_target(cfg: &AcoConfig, occ: &OccupancyModel, pass1_cost: u64) -> u64 {
    match cfg.occupancy_cap {
        None => pass1_cost,
        Some(cap) => {
            let prp = [
                occ.max_prp_for_occupancy(sched_ir::RegClass::Vgpr, cap)
                    .unwrap_or(0),
                occ.max_prp_for_occupancy(sched_ir::RegClass::Sgpr, cap)
                    .unwrap_or(0),
            ];
            pass1_cost.max(occ.rp_cost(prp))
        }
    }
}

/// Derives a per-ant RNG seed from the base seed, pass, iteration and ant
/// index (splitmix64 finalizer).
pub(crate) fn ant_seed(base: u64, pass: u32, iteration: u32, ant: u32) -> u64 {
    let mut z = base
        ^ (pass as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (iteration as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (ant as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The sequential two-pass ACO scheduler.
///
/// Pass 1 searches for a minimum-APRP-cost instruction order; pass 2
/// searches for the shortest latency-feasible schedule that keeps the
/// pass-1 cost (Section IV-A). Termination per pass: a pre-computed lower
/// bound is reached, or `termination` iterations elapse without
/// improvement.
///
/// # Example
///
/// ```
/// use aco::{AcoConfig, SequentialScheduler};
/// use machine_model::{OccupancyLut, OccupancyModel};
/// use sched_ir::figure1;
///
/// let ddg = figure1::ddg();
/// let occ = OccupancyModel::unit();
/// let result = SequentialScheduler::new(AcoConfig::small(42)).schedule(&ddg, &occ);
/// result.schedule.validate(&ddg).unwrap();
/// assert_eq!(result.prp[0], 3); // the paper's optimal PRP
/// ```
#[derive(Debug, Clone)]
pub struct SequentialScheduler {
    cfg: AcoConfig,
}

impl SequentialScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(cfg: AcoConfig) -> SequentialScheduler {
        SequentialScheduler { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcoConfig {
        &self.cfg
    }

    /// Schedules a region, returning the best schedule found together with
    /// per-pass statistics and the modeled CPU time.
    pub fn schedule(&mut self, ddg: &Ddg, occ: &OccupancyModel) -> AcoResult {
        self.schedule_with(ddg, occ, None)
    }

    /// Schedules a region, optionally seeding both passes' pheromone
    /// tables from a [`WarmStart`] hint (see [`crate::warm`]).
    ///
    /// With `warm = None` this is exactly [`SequentialScheduler::schedule`]
    /// — bit for bit. An applicable hint replaces the cold uniform table
    /// with a trail saturated along the hinted order and cuts the
    /// no-improvement budget to [`WARM_NO_IMPROVE_BUDGET`]; a hint whose
    /// size does not match the region is ignored.
    pub fn schedule_with(
        &mut self,
        ddg: &Ddg,
        occ: &OccupancyModel,
        warm: Option<&WarmStart>,
    ) -> AcoResult {
        let warm = warm.filter(|w| w.applies_to(ddg));
        let analysis = RegionAnalysis::new(ddg);
        let universe = RegUniverse::new(ddg);
        // Pressure cost of the hinted order, evaluated against *this*
        // region. The hint enters both passes as a candidate incumbent, so
        // a warm result is never lexicographically worse than its seed.
        let warm_cost =
            warm.map(|w| occ.rp_cost(reg_pressure::prp_of_order_in(&universe, w.order())));
        let lut = OccupancyLut::new(occ);
        let ctx = AntContext {
            ddg,
            analysis: &analysis,
            universe: &universe,
            lut: &lut,
            cfg: &self.cfg,
        };
        let mut total_ops: u64 = 0;

        // Initial schedule from the production heuristic.
        let initial = ListScheduler::new(Heuristic::AmdMaxOccupancy)
            .schedule_in(ddg, &lut, &analysis, &universe);
        total_ops += (ddg.len() as u64 + ddg.edge_count() as u64) * 4;

        if ddg.len() <= 1 {
            return AcoResult::trivial(ddg, occ, initial, CpuSpec::default().op_time_us(total_ops));
        }

        // ---- Pass 1: minimize the APRP register-pressure cost. ----
        let rp_lb = occ.rp_cost_lb(ddg.rp_lower_bound());
        let mut best_order = initial.order.clone();
        let mut best_cost = occ.rp_cost(initial.prp);
        if let (Some(w), Some(wc)) = (warm, warm_cost) {
            if wc < best_cost {
                best_cost = wc;
                best_order.clear();
                best_order.extend_from_slice(w.order());
            }
        }
        let mut pheromone = match warm {
            Some(w) => PheromoneTable::warm_started(
                ddg.len(),
                self.cfg.initial_pheromone,
                w.order(),
                self.cfg.tau_max,
            ),
            None => PheromoneTable::new(ddg.len(), self.cfg.initial_pheromone),
        };
        let budget = match warm {
            Some(_) => WARM_NO_IMPROVE_BUDGET,
            None => self.cfg.termination.budget(ddg.len()),
        };
        let mut pass1 = PassStats::default();
        let ops_before_p1 = total_ops;
        if best_cost > rp_lb {
            let mut no_improve = 0u32;
            let mut ant = Pass1Ant::new(&ctx, self.cfg.heuristic, 0);
            // Reusable winner buffer: losing ants are never materialized,
            // and the iteration winner is copied, not reallocated.
            let mut winner_order: Vec<InstrId> = Vec::with_capacity(ddg.len());
            while pass1.iterations < self.cfg.termination.max_iterations {
                pass1.iterations += 1;
                let mut winner_cost: Option<u64> = None;
                for a in 0..self.cfg.sequential_ants {
                    ant.reset(&ctx, ant_seed(self.cfg.seed, 1, pass1.iterations, a));
                    while !ant.finished(&ctx) {
                        ant.step(&ctx, &pheromone, None);
                    }
                    let cost = ant.cost(&ctx);
                    if winner_cost.is_none_or(|c| cost < c) {
                        winner_cost = Some(cost);
                        winner_order.clear();
                        winner_order.extend_from_slice(ant.order());
                    }
                }
                let wcost = winner_cost.expect("at least one ant per iteration");
                pheromone.evaporate(self.cfg.decay, self.cfg.tau_min);
                pheromone.deposit_order(&winner_order, self.cfg.deposit, self.cfg.tau_max);
                total_ops += pheromone.entries() as u64 * OPS_PER_PHEROMONE_ENTRY;
                if wcost < best_cost {
                    best_cost = wcost;
                    best_order.clone_from(&winner_order);
                    pass1.improved = true;
                    no_improve = 0;
                } else {
                    no_improve += 1;
                }
                if best_cost <= rp_lb {
                    pass1.hit_lb = true;
                    break;
                }
                if no_improve >= budget {
                    break;
                }
            }
            total_ops += ant.ops();
        } else {
            pass1.hit_lb = true;
        }
        pass1.best_cost = best_cost;
        pass1.time_us = CpuSpec::default().op_time_us(total_ops - ops_before_p1);

        // ---- Between passes: stalls are added to the best-RP order. ----
        let mut best_schedule = Schedule::from_order(ddg, &best_order);
        let mut best_length = best_schedule.length();
        let mut best_final_order = best_order.clone();
        let target_cost = pass2_target(&self.cfg, occ, best_cost);
        // Hint-as-candidate, length side: if the hinted order is feasible
        // under the pass-2 cost target and packs shorter than the pass-1
        // winner, start pass 2 from it.
        if let (Some(w), Some(wc)) = (warm, warm_cost) {
            if wc <= target_cost {
                let sched = Schedule::from_order(ddg, w.order());
                if sched.length() < best_length {
                    best_length = sched.length();
                    best_final_order.clear();
                    best_final_order.extend_from_slice(w.order());
                    best_schedule = sched;
                }
            }
        }

        // ---- Pass 2: minimize length under the pass-1 cost constraint. ----
        let len_lb: Cycle = ddg.schedule_length_lb();
        let mut pass2 = PassStats::default();
        let ops_before_p2 = total_ops;
        let gate = self.cfg.pass2_gate_cycles.max(1) as Cycle;
        if best_length >= len_lb + gate {
            match warm {
                Some(w) => pheromone.seed_order(w.order(), self.cfg.tau_max),
                None => pheromone.reset(),
            }
            let mut no_improve = 0u32;
            let mut rng = SmallRng::seed_from_u64(ant_seed(self.cfg.seed, 2, 0, 0));
            // One reusable ant for the whole pass (its ops accumulate
            // across resets and are charged once after the loop), plus
            // winner buffers so losing ants never materialize their
            // order or schedule.
            let mut ant = Pass2Ant::new(&ctx, self.cfg.heuristic, 0, target_cost, true);
            let mut winner_order: Vec<InstrId> = Vec::with_capacity(ddg.len());
            let mut winner_cycles: Vec<Cycle> = Vec::with_capacity(ddg.len());
            // Best-so-far cycles live in a plain buffer during the search;
            // the `Schedule` is materialized exactly once after the loop
            // (by moving the buffer), so the allocation count per launch
            // is independent of how many iterations improve.
            let mut best_cycles: Vec<Cycle> = Vec::with_capacity(ddg.len());
            best_cycles.extend_from_slice(best_schedule.cycles());
            while pass2.iterations < self.cfg.termination.max_iterations {
                pass2.iterations += 1;
                let mut winner_len: Option<Cycle> = None;
                for a in 0..self.cfg.sequential_ants {
                    // In the sequential algorithm the guiding heuristic is
                    // varied across ants the same way the parallel one
                    // varies it across wavefronts.
                    let h = Heuristic::ALL[rng.gen_range(0..Heuristic::ALL.len())];
                    ant.reset_with(
                        &ctx,
                        h,
                        ant_seed(self.cfg.seed, 2, pass2.iterations, a),
                        true,
                    );
                    let finished = loop {
                        match ant.step(&ctx, &pheromone, None) {
                            Pass2Step::Died => break false,
                            Pass2Step::Finished => break true,
                            Pass2Step::Issued { .. } | Pass2Step::Stalled { .. } => {}
                        }
                    };
                    if finished {
                        let len = ant.length();
                        if winner_len.is_none_or(|l| len < l) {
                            winner_len = Some(len);
                            winner_order.clear();
                            winner_order.extend_from_slice(ant.order());
                            winner_cycles.clear();
                            winner_cycles.extend_from_slice(ant.cycles());
                        }
                    }
                }
                pheromone.evaporate(self.cfg.decay, self.cfg.tau_min);
                total_ops += pheromone.entries() as u64 * OPS_PER_PHEROMONE_ENTRY;
                let improved = match winner_len {
                    Some(wlen) => {
                        pheromone.deposit_order(&winner_order, self.cfg.deposit, self.cfg.tau_max);
                        if wlen < best_length {
                            best_length = wlen;
                            best_cycles.clone_from(&winner_cycles);
                            best_final_order.clone_from(&winner_order);
                            true
                        } else {
                            false
                        }
                    }
                    None => false,
                };
                if improved {
                    pass2.improved = true;
                    no_improve = 0;
                } else {
                    no_improve += 1;
                }
                if best_length <= len_lb {
                    pass2.hit_lb = true;
                    break;
                }
                if no_improve >= budget {
                    break;
                }
            }
            total_ops += ant.ops();
            best_schedule = Schedule::from_cycles(best_cycles);
        } else if best_length <= len_lb {
            pass2.hit_lb = true;
        } else {
            pass2.gated = true;
        }
        pass2.best_cost = best_length as u64;
        pass2.time_us = CpuSpec::default().op_time_us(total_ops - ops_before_p2);

        let prp = reg_pressure::prp_of_order_in(&universe, &best_final_order);
        AcoResult {
            occupancy: occ.occupancy(prp),
            prp,
            length: best_length,
            order: best_final_order,
            schedule: best_schedule,
            initial,
            pass1,
            pass2,
            ops: total_ops,
            time_us: CpuSpec::default().op_time_us(total_ops),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_ir::figure1;

    #[test]
    fn figure1_finds_prp3_length10() {
        // The identity-APRP model reproduces the paper's walkthrough, where
        // PRP 3 is strictly better than PRP 4.
        let ddg = figure1::ddg();
        let occ = OccupancyModel::unit();
        let r = SequentialScheduler::new(AcoConfig::small(1)).schedule(&ddg, &occ);
        r.schedule.validate(&ddg).unwrap();
        assert_eq!(r.prp[0], 3, "paper's optimal PRP");
        assert_eq!(r.length, 10, "paper's optimal constrained length");
    }

    #[test]
    fn deterministic_across_runs() {
        let ddg = workloads::patterns::sized(60, 3);
        let occ = OccupancyModel::vega_like();
        let a = SequentialScheduler::new(AcoConfig::small(9)).schedule(&ddg, &occ);
        let b = SequentialScheduler::new(AcoConfig::small(9)).schedule(&ddg, &occ);
        assert_eq!(a.order, b.order);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.length, b.length);
    }

    #[test]
    fn aco_never_worse_than_its_initial_schedule() {
        let occ = OccupancyModel::vega_like();
        for seed in 0..6u64 {
            let ddg = workloads::patterns::sized(50 + seed as usize * 17, seed);
            let r = SequentialScheduler::new(AcoConfig::small(seed)).schedule(&ddg, &occ);
            r.schedule.validate(&ddg).unwrap();
            let init_cost = occ.rp_cost(r.initial.prp);
            assert!(
                occ.rp_cost(r.prp) <= init_cost,
                "seed {seed}: RP cost regressed {} -> {}",
                init_cost,
                occ.rp_cost(r.prp)
            );
        }
    }

    #[test]
    fn trivial_regions_bypass_aco() {
        use sched_ir::DdgBuilder;
        let mut b = DdgBuilder::new();
        b.instr("only", [], []);
        let ddg = b.build().unwrap();
        let occ = OccupancyModel::vega_like();
        let r = SequentialScheduler::new(AcoConfig::small(0)).schedule(&ddg, &occ);
        assert_eq!(r.length, 1);
        assert_eq!(r.pass1.iterations, 0);
        assert_eq!(r.pass2.iterations, 0);
    }

    #[test]
    fn lb_hit_stops_iteration_early() {
        // A latency-free chain: any topological order is optimal, the
        // heuristic hits both LBs and ACO never iterates.
        let ddg = workloads::patterns::transform_chain(1, 5, 0);
        let occ = OccupancyModel::vega_like();
        let r = SequentialScheduler::new(AcoConfig::small(0)).schedule(&ddg, &occ);
        assert!(r.pass2.iterations <= 1);
        r.schedule.validate(&ddg).unwrap();
    }

    #[test]
    fn schedule_with_none_is_bitwise_schedule() {
        let ddg = workloads::patterns::sized(70, 21);
        let occ = OccupancyModel::vega_like();
        let cold = SequentialScheduler::new(AcoConfig::small(4)).schedule(&ddg, &occ);
        let explicit =
            SequentialScheduler::new(AcoConfig::small(4)).schedule_with(&ddg, &occ, None);
        assert_eq!(cold.order, explicit.order);
        assert_eq!(cold.schedule, explicit.schedule);
        assert_eq!(cold.ops, explicit.ops);
        assert_eq!(cold.pass1, explicit.pass1);
        assert_eq!(cold.pass2, explicit.pass2);
    }

    #[test]
    fn warm_start_never_degrades_and_saves_iterations() {
        let occ = OccupancyModel::vega_like();
        let mut saved_any = false;
        for seed in 0..6u64 {
            let ddg = workloads::patterns::sized(60 + 10 * (seed as usize % 3), seed);
            let mut cfg = AcoConfig::small(seed);
            cfg.pass2_gate_cycles = 1;
            let cold = SequentialScheduler::new(cfg).schedule(&ddg, &occ);
            let hint = WarmStart::new(cold.order.clone()).unwrap();
            let warm = SequentialScheduler::new(cfg).schedule_with(&ddg, &occ, Some(&hint));
            warm.schedule.validate(&ddg).unwrap();
            // Quality: the warm search reproduces its seed in iteration 1
            // and can only improve on it.
            assert!(
                occ.rp_cost(warm.prp) <= occ.rp_cost(cold.prp),
                "seed {seed}: warm start degraded pressure cost"
            );
            if occ.rp_cost(warm.prp) == occ.rp_cost(cold.prp) {
                assert!(
                    warm.length <= cold.length,
                    "seed {seed}: warm start degraded length at equal cost"
                );
            }
            let cold_iters = cold.pass1.iterations + cold.pass2.iterations;
            let warm_iters = warm.pass1.iterations + warm.pass2.iterations;
            assert!(
                warm_iters <= cold_iters,
                "seed {seed}: warm start cost iterations ({warm_iters} vs {cold_iters})"
            );
            saved_any |= warm_iters < cold_iters;
        }
        assert!(
            saved_any,
            "warm starts must save iterations on at least one region"
        );
    }

    #[test]
    fn mismatched_warm_hint_is_ignored() {
        let ddg = workloads::patterns::sized(50, 9);
        let occ = OccupancyModel::vega_like();
        let wrong_size = WarmStart::new((0..10u32).map(sched_ir::InstrId).collect()).unwrap();
        let cold = SequentialScheduler::new(AcoConfig::small(2)).schedule(&ddg, &occ);
        let hinted = SequentialScheduler::new(AcoConfig::small(2)).schedule_with(
            &ddg,
            &occ,
            Some(&wrong_size),
        );
        assert_eq!(cold.order, hinted.order);
        assert_eq!(cold.ops, hinted.ops);
    }

    #[test]
    fn ops_accounting_is_nonzero_when_aco_runs() {
        let ddg = workloads::patterns::sized(80, 11);
        let occ = OccupancyModel::vega_like();
        let r = SequentialScheduler::new(AcoConfig::small(2)).schedule(&ddg, &occ);
        if r.pass1.iterations + r.pass2.iterations > 0 {
            assert!(r.ops > 1000);
            assert!(r.time_us > 0.0);
        }
    }
}

#[cfg(test)]
mod cap_tests {
    use super::*;
    use crate::config::AcoConfig;

    #[test]
    fn pass2_target_relaxes_to_the_cap_band() {
        let occ = OccupancyModel::vega_like();
        let cfg = AcoConfig::small(0);
        // Tight pass-1 cost (occupancy 10 band) stays when no cap is set...
        let tight = occ.rp_cost([20, 0]);
        assert_eq!(pass2_target(&cfg, &occ, tight), tight);
        // ...and relaxes to the cap's band maximum when one is.
        let capped_cfg = AcoConfig {
            occupancy_cap: Some(5),
            ..cfg
        };
        let relaxed = pass2_target(&capped_cfg, &occ, tight);
        assert!(relaxed > tight);
        assert_eq!(
            occ.occupancy([
                occ.max_prp_for_occupancy(sched_ir::RegClass::Vgpr, 5)
                    .unwrap(),
                0
            ]),
            5
        );
    }

    #[test]
    fn cap_never_tightens_the_target() {
        let occ = OccupancyModel::vega_like();
        // A pass-1 cost already looser than the cap band is kept.
        let cfg = AcoConfig {
            occupancy_cap: Some(9),
            ..AcoConfig::small(0)
        };
        let loose = occ.rp_cost([200, 0]); // occupancy 1 band
        assert_eq!(pass2_target(&cfg, &occ, loose), loose);
    }

    #[test]
    fn capped_scheduler_recovers_length() {
        // On a region where ACO buys occupancy with much length, capping at
        // the uncapped heuristic's occupancy must shorten the result.
        let occ = OccupancyModel::vega_like();
        for seed in 0..8u64 {
            let ddg = workloads::patterns::sized(120, 40 + seed);
            let cfg = AcoConfig {
                blocks: 8,
                ..AcoConfig::paper(seed)
            };
            let free = SequentialScheduler::new(cfg).schedule(&ddg, &occ);
            if free.occupancy <= free.initial.occupancy || free.length <= free.initial.length {
                continue; // no occupancy-for-length trade on this region
            }
            let capped_cfg = AcoConfig {
                occupancy_cap: Some(free.initial.occupancy),
                ..cfg
            };
            let capped = SequentialScheduler::new(capped_cfg).schedule(&ddg, &occ);
            capped.schedule.validate(&ddg).unwrap();
            assert!(
                capped.length <= free.length,
                "seed {seed}: cap lengthened the schedule ({} -> {})",
                free.length,
                capped.length
            );
            return; // one exercised trade is enough
        }
    }
}
