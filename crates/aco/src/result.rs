//! Result types shared by the sequential and parallel schedulers.

use list_sched::ScheduleResult;
use machine_model::OccupancyModel;
use sched_ir::{Cycle, Ddg, InstrId, Schedule, REG_CLASS_COUNT};

/// Statistics of one ACO pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PassStats {
    /// Iterations executed (0 when the pass was skipped because the input
    /// already matched the lower bound).
    pub iterations: u32,
    /// Whether the pass improved on its input.
    pub improved: bool,
    /// Whether the pass terminated by reaching the lower bound (provably
    /// optimal objective).
    pub hit_lb: bool,
    /// Best objective value at pass end (APRP cost for pass 1, schedule
    /// length for pass 2).
    pub best_cost: u64,
    /// Modeled scheduling time of this pass, microseconds (CPU model for
    /// the sequential scheduler, GPU launch profile for the parallel one).
    pub time_us: f64,
    /// Whether the pass was skipped by the cycle-threshold gate
    /// ([`crate::AcoConfig::pass2_gate_cycles`]) rather than by hitting the
    /// lower bound.
    pub gated: bool,
}

/// The outcome of a two-pass ACO scheduling run.
#[derive(Debug, Clone)]
pub struct AcoResult {
    /// Best schedule found (falls back to the initial heuristic schedule's
    /// order when ACO found no improvement).
    pub schedule: Schedule,
    /// Issue order of [`Self::schedule`].
    pub order: Vec<InstrId>,
    /// Peak register pressure per class.
    pub prp: [u32; REG_CLASS_COUNT],
    /// Occupancy implied by the PRP.
    pub occupancy: u32,
    /// Schedule length in cycles.
    pub length: Cycle,
    /// The initial heuristic schedule ACO started from (the comparison
    /// baseline for the pipeline's filters).
    pub initial: ScheduleResult,
    /// Pass-1 (register pressure) statistics.
    pub pass1: PassStats,
    /// Pass-2 (schedule length) statistics.
    pub pass2: PassStats,
    /// Total abstract operations executed by the scheduler.
    pub ops: u64,
    /// Modeled scheduling time in microseconds (CPU model for the
    /// sequential scheduler, GPU launch profile total for the parallel
    /// one).
    pub time_us: f64,
}

impl AcoResult {
    /// A result for a region too small for ACO: the heuristic schedule is
    /// final.
    pub fn trivial(
        _ddg: &Ddg,
        occ: &OccupancyModel,
        initial: ScheduleResult,
        time_us: f64,
    ) -> AcoResult {
        AcoResult {
            schedule: initial.schedule.clone(),
            order: initial.order.clone(),
            prp: initial.prp,
            occupancy: occ.occupancy(initial.prp),
            length: initial.length,
            initial,
            pass1: PassStats {
                hit_lb: true,
                ..PassStats::default()
            },
            pass2: PassStats {
                hit_lb: true,
                ..PassStats::default()
            },
            ops: 0,
            time_us,
        }
    }

    /// Occupancy gain over the initial heuristic schedule (negative =
    /// regression).
    pub fn occupancy_gain(&self) -> i64 {
        self.occupancy as i64 - self.initial.occupancy as i64
    }

    /// Length change versus the initial heuristic schedule (positive =
    /// ACO is longer).
    pub fn length_delta(&self) -> i64 {
        self.length as i64 - self.initial.length as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use list_sched::{Heuristic, ListScheduler};
    use sched_ir::figure1;

    #[test]
    fn trivial_result_mirrors_initial() {
        let ddg = figure1::ddg();
        let occ = OccupancyModel::vega_like();
        let initial = ListScheduler::new(Heuristic::AmdMaxOccupancy).schedule(&ddg, &occ);
        let r = AcoResult::trivial(&ddg, &occ, initial.clone(), 1.0);
        assert_eq!(r.length, initial.length);
        assert_eq!(r.prp, initial.prp);
        assert_eq!(r.occupancy_gain(), 0);
        assert_eq!(r.length_delta(), 0);
        assert!(r.pass1.hit_lb && r.pass2.hit_lb);
    }
}
