//! ACO scheduler configuration.

use gpu_sim::MemLayout;
use list_sched::Heuristic;
use serde::{Deserialize, Serialize};

/// Iteration budget as a function of region size (the paper's *termination
/// condition*: iterations without improvement before giving up).
///
/// The paper uses size categories `[1-49]`, `[50-99]`, `>= 100` with
/// termination conditions 1, 2, 3 (Section VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Termination {
    /// No-improvement budget for regions of 1–49 instructions.
    pub small: u32,
    /// No-improvement budget for regions of 50–99 instructions.
    pub medium: u32,
    /// No-improvement budget for regions of ≥ 100 instructions.
    pub large: u32,
    /// Hard cap on total iterations per pass (safety net).
    pub max_iterations: u32,
}

impl Termination {
    /// The paper's settings: 1 / 2 / 3.
    pub fn paper() -> Termination {
        Termination {
            small: 1,
            medium: 2,
            large: 3,
            max_iterations: 64,
        }
    }

    /// The no-improvement budget for a region of `n` instructions.
    pub fn budget(&self, n: usize) -> u32 {
        match n {
            0..=49 => self.small,
            50..=99 => self.medium,
            _ => self.large,
        }
    }
}

/// GPU-specific optimization toggles (Sections V-A and V-B).
///
/// All of them default to *on* (the paper's final configuration); the
/// ablation experiments (Tables 4.a, 4.b, 6) switch them off one group at a
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuTuning {
    /// Structure-of-arrays device layout (memory coalescing, Section V-A).
    pub layout: MemLayout,
    /// Allocate and initialize on the host, one device allocation, instead
    /// of device-side dynamic allocation (Section V-A).
    pub preallocate: bool,
    /// Consolidate transfers into large arrays: one copy call per array
    /// instead of per variable (Section V-A).
    pub batched_transfer: bool,
    /// Size ready lists by the transitive-closure upper bound instead of
    /// the instruction count (Section V-A).
    pub tight_ready_ub: bool,
    /// Make the explore/exploit choice once per wavefront per step instead
    /// of per thread (Section V-B).
    pub wavefront_level_choice: bool,
    /// Fraction of wavefronts allowed to insert optional stalls in pass 2
    /// (Section V-B; the paper settles on 0.25 — Table 6 sweeps it).
    pub stall_wavefront_fraction: f64,
    /// Terminate a whole wavefront as soon as one thread completes its
    /// schedule (Section V-B).
    pub early_wavefront_termination: bool,
    /// Use a different guiding heuristic per wavefront group
    /// (Section V-B).
    pub per_wavefront_heuristics: bool,
}

impl GpuTuning {
    /// All optimizations on, as in the paper's headline configuration.
    pub fn optimized() -> GpuTuning {
        GpuTuning {
            layout: MemLayout::Soa,
            preallocate: true,
            batched_transfer: true,
            tight_ready_ub: true,
            wavefront_level_choice: true,
            stall_wavefront_fraction: 0.25,
            early_wavefront_termination: true,
            per_wavefront_heuristics: true,
        }
    }

    /// Memory optimizations off (Table 4.a baseline): AoS layout,
    /// device-side allocation, per-variable transfers, loose ready bound.
    pub fn memory_unoptimized(self) -> GpuTuning {
        GpuTuning {
            layout: MemLayout::Aos,
            preallocate: false,
            batched_transfer: false,
            tight_ready_ub: false,
            ..self
        }
    }

    /// Divergence optimizations off (Table 4.b baseline): thread-level
    /// choices, all wavefronts may stall, no early termination, one shared
    /// heuristic.
    pub fn divergence_unoptimized(self) -> GpuTuning {
        GpuTuning {
            wavefront_level_choice: false,
            stall_wavefront_fraction: 1.0,
            early_wavefront_termination: false,
            per_wavefront_heuristics: false,
            ..self
        }
    }
}

impl Default for GpuTuning {
    fn default() -> GpuTuning {
        GpuTuning::optimized()
    }
}

/// Full configuration of the ACO schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcoConfig {
    /// Base RNG seed (every ant derives its own stream from it).
    pub seed: u64,
    /// Ants per iteration in the *sequential* scheduler.
    pub sequential_ants: u32,
    /// GPU blocks per launch; each block is one 64-thread wavefront, so the
    /// parallel colony has `blocks * 64` ants (the paper launches 180).
    pub blocks: u32,
    /// Threads per block (= wavefront size; 64 on the paper's target).
    pub threads_per_block: u32,
    /// Pheromone decay factor (the paper uses 0.8).
    pub decay: f64,
    /// Probability of exploitation (argmax) instead of biased exploration.
    pub q0: f64,
    /// Exponent of the guiding heuristic η in the selection formula.
    pub beta: f64,
    /// Initial pheromone level.
    pub initial_pheromone: f64,
    /// Pheromone deposited on each winner edge per iteration.
    pub deposit: f64,
    /// Bounds keeping the pheromone table away from stagnation.
    pub tau_min: f64,
    /// Upper pheromone bound.
    pub tau_max: f64,
    /// Iteration budgets by region size.
    pub termination: Termination,
    /// Default guiding heuristic (pass 1 biases towards pressure, so LUC).
    pub heuristic: Heuristic,
    /// Maximum optional stalls an ant may insert, as a fraction of the
    /// region size.
    pub optional_stall_budget: f64,
    /// GPU optimization toggles (parallel scheduler only).
    pub tuning: GpuTuning,
    /// Pass-2 gate: run the ILP pass only when the pass-2 input schedule is
    /// at least this many cycles above the length lower bound. The paper's
    /// compile-time filter settles on 21 cycles (Section VI-D, Table 7);
    /// 0 disables the gate.
    pub pass2_gate_cycles: u32,
    /// Kernel-level occupancy target: when set, pass 2's pressure
    /// constraint is relaxed to the APRP band of this occupancy — pressure
    /// savings beyond what the whole kernel can use are not worth schedule
    /// length (occupancy is a per-kernel property).
    pub occupancy_cap: Option<u32>,
}

impl AcoConfig {
    /// The paper's full-scale configuration: 180 blocks × 64 threads =
    /// 11,520 ants.
    pub fn paper(seed: u64) -> AcoConfig {
        AcoConfig {
            seed,
            sequential_ants: 80,
            blocks: 180,
            threads_per_block: 64,
            decay: 0.8,
            q0: 0.9,
            beta: 2.0,
            initial_pheromone: 1.0,
            deposit: 1.0,
            tau_min: 0.01,
            tau_max: 8.0,
            termination: Termination::paper(),
            heuristic: Heuristic::LastUseCount,
            optional_stall_budget: 0.25,
            tuning: GpuTuning::optimized(),
            pass2_gate_cycles: 0,
            occupancy_cap: None,
        }
    }

    /// A scaled-down colony (32 blocks = 2,048 ants) whose *cost model* is
    /// unchanged; the default for tests and CI-speed benchmarks.
    pub fn small(seed: u64) -> AcoConfig {
        AcoConfig {
            blocks: 32,
            ..AcoConfig::paper(seed)
        }
    }

    /// Total ants per parallel iteration.
    pub fn parallel_ants(&self) -> u32 {
        self.blocks * self.threads_per_block
    }
}

impl Default for AcoConfig {
    fn default() -> AcoConfig {
        AcoConfig::small(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn termination_bands_match_paper() {
        let t = Termination::paper();
        assert_eq!(t.budget(1), 1);
        assert_eq!(t.budget(49), 1);
        assert_eq!(t.budget(50), 2);
        assert_eq!(t.budget(99), 2);
        assert_eq!(t.budget(100), 3);
        assert_eq!(t.budget(2223), 3);
    }

    #[test]
    fn paper_colony_is_11520_ants() {
        assert_eq!(AcoConfig::paper(0).parallel_ants(), 11_520);
    }

    #[test]
    fn ablation_constructors_flip_the_right_knobs() {
        let opt = GpuTuning::optimized();
        let mem = opt.memory_unoptimized();
        assert_eq!(mem.layout, MemLayout::Aos);
        assert!(!mem.preallocate && !mem.batched_transfer && !mem.tight_ready_ub);
        assert!(mem.wavefront_level_choice, "divergence knobs untouched");
        let div = opt.divergence_unoptimized();
        assert_eq!(div.layout, MemLayout::Soa, "memory knobs untouched");
        assert!(!div.wavefront_level_choice && !div.early_wavefront_termination);
        assert_eq!(div.stall_wavefront_fraction, 1.0);
    }
}
