//! Proves the ant construction hot loop is allocation-free: a counting
//! global allocator observes a full reset + construction cycle for both
//! pass-1 and pass-2 ants and must see **zero** heap activity.
//!
//! The contract under test (see `construct.rs`): every working buffer —
//! ready list, order, issue cycles, issuable scratch, roulette weights —
//! is reserved at region capacity when the ant is created, so reusing an
//! ant across a colony costs no allocator traffic at all. Only
//! `result()` (winner materialization) may allocate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use aco::{AcoConfig, AntContext, Pass1Ant, Pass2Ant, Pass2Step, PheromoneTable};
use list_sched::{Heuristic, RegionAnalysis};
use machine_model::{OccupancyLut, OccupancyModel};
use reg_pressure::RegUniverse;

thread_local! {
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Counts every allocation and reallocation on this thread. Frees are not
/// counted: the assertion is about acquiring memory mid-loop, and a free
/// with no matching later alloc cannot hide one.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn events() -> u64 {
    ALLOC_EVENTS.with(Cell::get)
}

/// Runs `f` and returns how many allocator events it caused.
fn count_events<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = events();
    let r = f();
    (events() - before, r)
}

#[test]
fn pass1_and_pass2_constructions_allocate_nothing() {
    let ddg = workloads::patterns::sized(120, 13);
    let analysis = RegionAnalysis::new(&ddg);
    let universe = RegUniverse::new(&ddg);
    let lut = OccupancyLut::new(&OccupancyModel::vega_like());
    let cfg = AcoConfig::paper(5);
    let ctx = AntContext {
        ddg: &ddg,
        analysis: &analysis,
        universe: &universe,
        lut: &lut,
        cfg: &cfg,
    };
    let pheromone = PheromoneTable::new(ddg.len(), cfg.initial_pheromone);

    // ---- Pass 1: the full reset + construction cycle is silent. ----
    let mut ant1 = Pass1Ant::new(&ctx, cfg.heuristic, 0);
    // Warm-up run: not measured (first construction may touch lazily
    // initialized thread state outside the scheduler).
    ant1.reset(&ctx, 1);
    while !ant1.finished(&ctx) {
        ant1.step(&ctx, &pheromone, None);
    }
    // Plain reset (the colony's per-iteration entry point) is silent too:
    // it seeds the ready list from the DDG's cached root set rather than
    // re-deriving roots with a preds scan.
    for seed in 20..24u64 {
        let (n, ()) = count_events(|| {
            ant1.reset(&ctx, seed);
            while !ant1.finished(&ctx) {
                ant1.step(&ctx, &pheromone, None);
            }
        });
        assert_eq!(n, 0, "pass-1 reset (seed {seed}) hit the allocator");
    }
    for (seed, h) in (2..10u64).zip(
        [Heuristic::ALL, Heuristic::ALL]
            .concat()
            .into_iter()
            .cycle(),
    ) {
        let (n, ()) = count_events(|| {
            ant1.reset_with(&ctx, h, seed);
            while !ant1.finished(&ctx) {
                ant1.step(&ctx, &pheromone, None);
            }
            let _ = ant1.cost(&ctx);
            let _ = ant1.order();
            let _ = ant1.prp();
        });
        assert_eq!(n, 0, "pass-1 construction (seed {seed}) hit the allocator");
    }

    // ---- Pass 2: likewise, across heuristics and stall permissions. ----
    let target = u64::MAX; // unconstrained: the ant always finishes
    let mut ant2 = Pass2Ant::new(&ctx, cfg.heuristic, 0, target, true);
    ant2.reset(&ctx, 1);
    while ant2.running() {
        ant2.step(&ctx, &pheromone, None);
    }
    for seed in 20..24u64 {
        let (n, finished) = count_events(|| {
            ant2.reset(&ctx, seed);
            loop {
                match ant2.step(&ctx, &pheromone, None) {
                    Pass2Step::Died => break false,
                    Pass2Step::Finished => break true,
                    Pass2Step::Issued { .. } | Pass2Step::Stalled { .. } => {}
                }
            }
        });
        assert_eq!(n, 0, "pass-2 reset (seed {seed}) hit the allocator");
        assert!(finished, "unconstrained pass-2 ants cannot die");
    }
    for (seed, h) in (2..10u64).zip(
        [Heuristic::ALL, Heuristic::ALL]
            .concat()
            .into_iter()
            .cycle(),
    ) {
        let may_stall = seed % 2 == 0;
        let (n, finished) = count_events(|| {
            ant2.reset_with(&ctx, h, seed, may_stall);
            loop {
                match ant2.step(&ctx, &pheromone, None) {
                    Pass2Step::Died => break false,
                    Pass2Step::Finished => break true,
                    Pass2Step::Issued { .. } | Pass2Step::Stalled { .. } => {}
                }
            }
        });
        assert_eq!(n, 0, "pass-2 construction (seed {seed}) hit the allocator");
        assert!(finished, "unconstrained pass-2 ants cannot die");
        let (n, ()) = count_events(|| {
            let _ = ant2.length();
            let _ = ant2.order();
            let _ = ant2.cycles();
            let _ = ant2.prp();
        });
        assert_eq!(n, 0, "pass-2 accessors hit the allocator");
    }

    // Winner materialization is the one place that may allocate.
    let (n, r) = count_events(|| ant2.result());
    assert!(n > 0, "result() clones, so it must allocate");
    r.schedule.validate(&ddg).unwrap();
}

#[test]
fn allocator_counter_actually_counts() {
    let (n, v) = count_events(|| Vec::<u64>::with_capacity(32));
    assert!(n >= 1, "allocation went uncounted");
    drop(v);
    let mut v = Vec::<u64>::with_capacity(2);
    v.extend_from_slice(&[1, 2]);
    let (n, ()) = count_events(|| v.extend_from_slice(&[3, 4, 5, 6, 7, 8, 9]));
    assert!(n >= 1, "reallocation went uncounted");
}
