//! End-to-end tests of the `gpu-aco-cli analyze` subcommand: exit codes,
//! source spans, the machine-readable JSON report the CI deny-gate
//! consumes, and baseline suppression.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli(args: &[&str], dir: &std::path::Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gpu-aco-cli"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("running gpu-aco-cli")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gpu-aco-cli-analyze-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A clean region file: generated workloads are acyclic, SSA, and carry
/// model-consistent latencies, so `analyze` must exit 0 on them.
fn write_clean_region(dir: &std::path::Path) -> String {
    let out = cli(&["generate", "mixed", "40", "--seed", "3"], dir);
    assert!(out.status.success());
    let path = dir.join("clean.txt");
    std::fs::write(&path, &out.stdout).unwrap();
    path.to_string_lossy().into_owned()
}

/// A two-instruction region with a dependence cycle (S002, deny).
fn write_cyclic_region(dir: &std::path::Path) -> String {
    let path = dir.join("cyclic.txt");
    std::fs::write(
        &path,
        "instr v_alu_0 defs v0\ninstr v_alu_1 defs v1 uses v0\nedge 0 1 1\nedge 1 0 1\n",
    )
    .unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn clean_region_analyzes_ok() {
    let dir = tmp_dir("clean");
    let region = write_clean_region(&dir);
    let out = cli(&["analyze", &region], &dir);
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok"), "{stdout}");
}

#[test]
fn cyclic_region_denies_with_witness_and_span() {
    let dir = tmp_dir("cyclic");
    let region = write_cyclic_region(&dir);
    let out = cli(&["analyze", &region], &dir);
    assert!(!out.status.success(), "a deny finding must exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("deny[S002]"), "{stdout}");
    // The span points at the cycle-closing edge's source line.
    assert!(stdout.contains("cyclic.txt:4:1"), "{stdout}");
    assert!(stdout.contains("cycle 0 -> 1 -> 0"), "{stdout}");
}

#[test]
fn json_report_is_valid_and_machine_readable() {
    let dir = tmp_dir("json");
    let clean = write_clean_region(&dir);
    let cyclic = write_cyclic_region(&dir);
    let out = cli(&["analyze", &clean, &cyclic, "--json"], &dir);
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    // Strict JSON: the report must parse under an independent RFC 8259
    // recognizer, not just look JSON-ish.
    gpu_aco::analyze::json_check::validate(stdout.trim())
        .unwrap_or_else(|(pos, msg)| panic!("invalid JSON at byte {pos}: {msg}\n{stdout}"));
    assert!(stdout.contains("\"schema\":\"sched-analyze-findings/v1\""));
    assert!(stdout.contains("\"deny\":1"), "{stdout}");
    assert!(stdout.contains("\"code\":\"S002\""), "{stdout}");
    assert!(stdout.contains("\"line\":4"), "{stdout}");
}

#[test]
fn baseline_suppresses_known_findings() {
    let dir = tmp_dir("baseline");
    let region = write_cyclic_region(&dir);
    let baseline = dir.join("baseline.txt").to_string_lossy().into_owned();
    let write = cli(&["analyze", &region, "--write-baseline", &baseline], &dir);
    assert!(
        !write.status.success(),
        "findings still denied on the write run"
    );
    let out = cli(&["analyze", &region, "--baseline", &baseline], &dir);
    assert!(
        out.status.success(),
        "baselined findings must not gate: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let json = cli(
        &["analyze", &region, "--baseline", &baseline, "--json"],
        &dir,
    );
    let stdout = String::from_utf8_lossy(&json.stdout);
    assert!(stdout.contains("\"deny\":0"), "{stdout}");
    assert!(stdout.contains("\"suppressed\":1"), "{stdout}");
}

#[test]
fn pedantic_flag_reveals_redundant_edges() {
    let dir = tmp_dir("pedantic");
    let path = dir.join("redundant.txt");
    // a -> m -> b plus a direct a -> b edge of latency 1: the two-edge
    // path has effective latency 2, so the direct edge is S001-redundant.
    std::fs::write(
        &path,
        "instr v_alu_0 defs v0\ninstr v_alu_1 defs v1 uses v0\n\
         instr v_alu_2 defs v2 uses v1\nedge 0 1 1\nedge 1 2 1\nedge 0 2 1\n",
    )
    .unwrap();
    let region = path.to_string_lossy().into_owned();
    let quiet = cli(&["analyze", &region], &dir);
    assert!(quiet.status.success());
    assert!(!String::from_utf8_lossy(&quiet.stdout).contains("S001"));
    let loud = cli(&["analyze", &region, "--pedantic"], &dir);
    assert!(loud.status.success(), "pedantic findings never gate");
    let stdout = String::from_utf8_lossy(&loud.stdout);
    assert!(stdout.contains("pedantic[S001]"), "{stdout}");
}
