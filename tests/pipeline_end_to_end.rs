//! End-to-end pipeline integration: suite compilation under every
//! scheduler kind, filter interactions, and the execution model.

use gpu_aco::compile::{compile_region, compile_suite, PipelineConfig, SchedulerKind};
use gpu_aco::machine::OccupancyModel;
use workloads::{Suite, SuiteConfig};

fn cfg(kind: SchedulerKind) -> PipelineConfig {
    let mut c = PipelineConfig::paper(kind, 11);
    c.aco.blocks = 4;
    c
}

#[test]
fn suite_compiles_under_every_scheduler_kind() {
    let suite = Suite::generate(&SuiteConfig::scaled(11, 0.006));
    let occ = OccupancyModel::vega_like();
    let mut compile_times = Vec::new();
    for kind in SchedulerKind::ALL {
        let run = compile_suite(&suite, &occ, &cfg(kind));
        assert_eq!(run.regions.len(), suite.region_count(), "{kind:?}");
        assert_eq!(run.kernel_occupancy.len(), suite.kernels.len());
        assert_eq!(run.benchmark_throughput.len(), suite.benchmarks.len());
        assert!(run
            .benchmark_throughput
            .iter()
            .all(|&t| t.is_finite() && t > 0.0));
        compile_times.push((kind, run.compile_time_s));
    }
    // The ACO schedulers pay for their search; the base build is cheapest.
    let base = compile_times[0].1;
    for &(kind, t) in &compile_times[1..] {
        assert!(t >= base * 0.99, "{kind:?} cheaper than base?");
    }
}

#[test]
fn kernel_occupancy_is_min_over_final_regions() {
    let suite = Suite::generate(&SuiteConfig::scaled(13, 0.006));
    let occ = OccupancyModel::vega_like();
    let run = compile_suite(&suite, &occ, &cfg(SchedulerKind::ParallelAco));
    for (k, _) in suite.kernels.iter().enumerate() {
        let min_occ = run
            .regions
            .iter()
            .filter(|r| r.kernel == k)
            .map(|r| r.occupancy)
            .min()
            .expect("kernels have regions");
        assert_eq!(run.kernel_occupancy[k], min_occ, "kernel {k}");
    }
}

#[test]
fn aco_never_lowers_final_kernel_occupancy() {
    let suite = Suite::generate(&SuiteConfig::scaled(17, 0.006));
    let occ = OccupancyModel::vega_like();
    let base = compile_suite(&suite, &occ, &cfg(SchedulerKind::BaseAmd));
    let aco = compile_suite(&suite, &occ, &cfg(SchedulerKind::ParallelAco));
    for (k, (&a, &b)) in aco
        .kernel_occupancy
        .iter()
        .zip(&base.kernel_occupancy)
        .enumerate()
    {
        assert!(a >= b, "kernel {k}: ACO lowered occupancy {b} -> {a}");
    }
}

#[test]
fn region_filters_respect_paper_parameters() {
    // A region where ACO trades a small occupancy gain for a giant length
    // regression must be reverted by the (3, 63) filter.
    let occ = OccupancyModel::vega_like();
    let mut c = cfg(SchedulerKind::ParallelAco);
    c.revert_occupancy_gain = 10; // every gain is "small"
    c.revert_length_penalty = 0; // any length growth reverts
    for seed in 0..6u64 {
        let ddg = workloads::patterns::sized(100, 70 + seed);
        let r = compile_region(&ddg, &occ, &c);
        assert!(
            r.length <= r.heuristic.length,
            "seed {seed}: kept a longer schedule despite a zero-tolerance filter"
        );
    }
}

#[test]
fn throughput_model_is_deterministic_across_runs() {
    let suite = Suite::generate(&SuiteConfig::scaled(19, 0.006));
    let occ = OccupancyModel::vega_like();
    let a = compile_suite(&suite, &occ, &cfg(SchedulerKind::SequentialAco));
    let b = compile_suite(&suite, &occ, &cfg(SchedulerKind::SequentialAco));
    assert_eq!(a.benchmark_throughput, b.benchmark_throughput);
    assert_eq!(a.compile_time_s, b.compile_time_s);
}
