//! Optimality oracle: on regions small enough to enumerate, the exact B&B
//! scheduler bounds every other scheduler in the workspace.

use gpu_aco::exact::{min_length_schedule, min_rp_order, BnbConfig};
use gpu_aco::heuristics::{Heuristic, ListScheduler};
use gpu_aco::machine::OccupancyModel;
use gpu_aco::pressure::prp_of_order;
use gpu_aco::scheduler::{AcoConfig, ParallelScheduler};

#[test]
fn exact_rp_bounds_all_schedulers_on_small_regions() {
    let occ = OccupancyModel::unit();
    let cfg = BnbConfig::default();
    for seed in 0..10u64 {
        let ddg = workloads::patterns::sized(12, 2000 + seed);
        let exact = min_rp_order(&ddg, &occ, &cfg);
        if !exact.proven_optimal {
            continue;
        }
        for h in Heuristic::ALL {
            let order = ListScheduler::new(h).order(&ddg, &occ);
            assert!(
                occ.rp_cost(prp_of_order(&ddg, &order)) >= exact.rp_cost,
                "seed {seed}: {h:?} beat the proven RP optimum"
            );
        }
        let par = ParallelScheduler::new(AcoConfig {
            blocks: 4,
            ..AcoConfig::paper(seed)
        })
        .schedule(&ddg, &occ)
        .result;
        assert!(
            occ.rp_cost(par.prp) >= exact.rp_cost,
            "seed {seed}: parallel ACO beat the proven RP optimum"
        );
    }
}

#[test]
fn exact_length_bounds_all_schedulers_unconstrained() {
    let occ = OccupancyModel::vega_like();
    let cfg = BnbConfig::default();
    for seed in 0..8u64 {
        let ddg = workloads::patterns::sized(11, 3000 + seed);
        let exact =
            min_length_schedule(&ddg, &occ, u64::MAX, &cfg).expect("unconstrained search succeeds");
        if !exact.proven_optimal {
            continue;
        }
        for h in Heuristic::ALL {
            let r = ListScheduler::new(h).schedule(&ddg, &occ);
            assert!(
                r.length >= exact.length,
                "seed {seed}: {h:?} schedule shorter than the proven optimum"
            );
        }
        assert!(exact.length >= ddg.schedule_length_lb());
    }
}
