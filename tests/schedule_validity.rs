//! Cross-crate integration tests: every scheduler in the workspace must
//! produce valid schedules on every workload generator, and the two ACO
//! drivers must agree on problem semantics.

use gpu_aco::heuristics::{Heuristic, ListScheduler};
use gpu_aco::machine::OccupancyModel;
use gpu_aco::pressure::prp_of_order;
use gpu_aco::scheduler::{AcoConfig, ParallelScheduler, SequentialScheduler};
use sched_ir::Ddg;

fn all_generators(seed: u64) -> Vec<(&'static str, Ddg)> {
    vec![
        ("reduction", workloads::patterns::reduction(24, seed)),
        ("scan", workloads::patterns::scan(12, seed)),
        (
            "transform",
            workloads::patterns::transform_chain(6, 4, seed),
        ),
        (
            "vector_transform",
            workloads::patterns::vector_transform(5, 3, 4, seed),
        ),
        ("stencil", workloads::patterns::stencil(8, 2, seed)),
        ("sort", workloads::patterns::sort_network(8, seed)),
        ("gather", workloads::patterns::gather_chain(4, 3, seed)),
        ("random", workloads::patterns::random_layered(10, 5, seed)),
        ("sized", workloads::patterns::sized(90, seed)),
    ]
}

fn small_cfg(seed: u64) -> AcoConfig {
    AcoConfig {
        blocks: 8,
        ..AcoConfig::paper(seed)
    }
}

#[test]
fn every_list_scheduler_is_valid_on_every_generator() {
    let occ = OccupancyModel::vega_like();
    for seed in [1u64, 2] {
        for (name, ddg) in all_generators(seed) {
            for h in Heuristic::ALL {
                let r = ListScheduler::new(h).schedule(&ddg, &occ);
                r.schedule
                    .validate(&ddg)
                    .unwrap_or_else(|e| panic!("{name}/{h:?} seed {seed}: {e}"));
                assert_eq!(
                    r.prp,
                    prp_of_order(&ddg, &r.order),
                    "{name}/{h:?}: PRP mismatch"
                );
                assert!(
                    r.length >= ddg.schedule_length_lb(),
                    "{name}/{h:?}: below LB"
                );
            }
        }
    }
}

#[test]
fn sequential_aco_is_valid_on_every_generator() {
    let occ = OccupancyModel::vega_like();
    for (name, ddg) in all_generators(3) {
        let r = SequentialScheduler::new(small_cfg(3)).schedule(&ddg, &occ);
        r.schedule
            .validate(&ddg)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            occ.rp_cost(r.prp) <= occ.rp_cost(r.initial.prp),
            "{name}: ACO worsened the pressure cost"
        );
    }
}

#[test]
fn parallel_aco_is_valid_on_every_generator() {
    let occ = OccupancyModel::vega_like();
    for (name, ddg) in all_generators(4) {
        let out = ParallelScheduler::new(small_cfg(4)).schedule(&ddg, &occ);
        out.result
            .schedule
            .validate(&ddg)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            occ.rp_cost(out.result.prp) <= occ.rp_cost(out.result.initial.prp),
            "{name}: ACO worsened the pressure cost"
        );
    }
}

#[test]
fn sequential_and_parallel_agree_on_lower_bound_hits() {
    // On a region the heuristic already schedules optimally, neither
    // scheduler should iterate, and both must return the same metrics.
    let occ = OccupancyModel::vega_like();
    let ddg = workloads::patterns::transform_chain(1, 6, 0);
    let seq = SequentialScheduler::new(small_cfg(0)).schedule(&ddg, &occ);
    let par = ParallelScheduler::new(small_cfg(0)).schedule(&ddg, &occ);
    assert_eq!(seq.pass1.iterations, par.result.pass1.iterations);
    assert_eq!(seq.length, par.result.length);
    assert_eq!(seq.prp, par.result.prp);
}

#[test]
fn parallel_quality_tracks_colony_size() {
    // More ants can only improve (or match) the best pressure cost found,
    // statistically; verify on a batch that the big colony never loses on
    // the final occupancy.
    let occ = OccupancyModel::vega_like();
    let mut wins = 0i32;
    for seed in 0..5u64 {
        let ddg = workloads::patterns::sized(120, 900 + seed);
        let small = ParallelScheduler::new(AcoConfig {
            blocks: 2,
            ..AcoConfig::paper(seed)
        })
        .schedule(&ddg, &occ);
        let large = ParallelScheduler::new(AcoConfig {
            blocks: 16,
            ..AcoConfig::paper(seed)
        })
        .schedule(&ddg, &occ);
        match large.result.occupancy.cmp(&small.result.occupancy) {
            std::cmp::Ordering::Greater => wins += 1,
            std::cmp::Ordering::Less => wins -= 1,
            std::cmp::Ordering::Equal => {}
        }
    }
    assert!(
        wins >= 0,
        "bigger colonies must not lose occupancy on balance"
    );
}
