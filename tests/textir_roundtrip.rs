//! The text interchange format round-trips every workload generator.

use gpu_aco::ir::textir;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_regions_roundtrip(target in 4usize..160, seed in any::<u64>()) {
        let ddg = workloads::patterns::sized(target, seed);
        let text = textir::to_text(&ddg);
        let back = textir::parse(&text).unwrap();
        prop_assert_eq!(back.len(), ddg.len());
        prop_assert_eq!(back.edge_count(), ddg.edge_count());
        for id in ddg.ids() {
            prop_assert_eq!(back.instr(id).name(), ddg.instr(id).name());
            prop_assert_eq!(back.instr(id).defs(), ddg.instr(id).defs());
            prop_assert_eq!(back.instr(id).uses(), ddg.instr(id).uses());
            prop_assert_eq!(back.succs(id), ddg.succs(id));
        }
        // Derived analyses agree after the round trip.
        prop_assert_eq!(back.schedule_length_lb(), ddg.schedule_length_lb());
        prop_assert_eq!(
            back.transitive_closure().ready_list_ub(),
            ddg.transitive_closure().ready_list_ub()
        );
    }
}

#[test]
fn dot_export_works_on_generated_regions() {
    for seed in 0..4u64 {
        let ddg = workloads::patterns::sized(40, seed);
        let dot = gpu_aco::ir::dot::to_dot(&ddg);
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches(" -> ").count(), ddg.edge_count());
    }
}
