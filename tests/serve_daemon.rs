//! End-to-end tests of the scheduling daemon (`gpu-aco-cli serve`) and its
//! client (`gpu-aco-cli request`): byte identity with the one-shot CLI,
//! concurrent Unix-socket clients, typed overload/expiry rejections, and
//! SIGTERM drain with durable cache persistence.

#![cfg(unix)]

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn cli(args: &[&str], dir: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gpu-aco-cli"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("running gpu-aco-cli")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpu-aco-serve-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_region(dir: &Path, name: &str, pattern: &str, size: &str, seed: &str) -> String {
    let out = cli(&["generate", pattern, size, "--seed", seed], dir);
    assert!(out.status.success());
    let path = dir.join(name);
    std::fs::write(&path, &out.stdout).unwrap();
    path.to_string_lossy().into_owned()
}

/// Boots `serve --socket` and waits for the socket to exist.
fn start_daemon(dir: &Path, socket: &Path, extra: &[&str]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_gpu-aco-cli"));
    cmd.arg("serve")
        .arg("--socket")
        .arg(socket)
        .args(extra)
        .current_dir(dir)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    let child = cmd.spawn().expect("spawning daemon");
    let deadline = Instant::now() + Duration::from_secs(20);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {socket:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    child
}

fn stop_daemon(mut child: Child) {
    // SIGTERM → graceful drain; the daemon must exit on its own.
    let term = Command::new("kill")
        .arg(child.id().to_string())
        .status()
        .expect("sending SIGTERM");
    assert!(term.success());
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match child.try_wait().expect("waiting for daemon") {
            Some(status) => {
                assert!(status.success(), "daemon exited with {status}");
                break;
            }
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("daemon did not drain within the deadline");
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

#[test]
fn stdio_session_is_byte_identical_to_one_shot_cli() {
    let dir = tmp_dir("stdio");
    let region = write_region(&dir, "r.txt", "mixed", "60", "7");
    let one_shot = cli(
        &[
            "schedule",
            &region,
            "--no-cache",
            "--scheduler",
            "seq",
            "--seed",
            "2",
        ],
        &dir,
    );
    assert!(one_shot.status.success());

    let text = std::fs::read_to_string(&region).unwrap();
    let request = format!(
        "req q1 schedule scheduler=seq seed=2 ddg {}\n{text}",
        text.lines().count()
    );
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_gpu-aco-cli"))
        .arg("serve")
        .current_dir(&dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawning stdio daemon");
    daemon
        .stdin
        .take()
        .unwrap()
        .write_all(request.as_bytes())
        .unwrap();
    // Dropping stdin closes it: EOF drains the daemon.
    let out = daemon.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let (header, payload) = stdout.split_once('\n').expect("framed response");
    assert!(header.starts_with("resp q1 ok "), "header: {header}");
    assert_eq!(
        payload.as_bytes(),
        &one_shot.stdout[..],
        "daemon payload differs from one-shot CLI output"
    );
}

#[test]
fn concurrent_socket_clients_match_one_shot_and_cache_survives_sigterm() {
    let dir = tmp_dir("socket");
    let socket = dir.join("daemon.sock");
    let cache = dir.join("cache.txt");

    // Pre-warm a cache file through the one-shot CLI so boot exercises the
    // preload path.
    let warm_region = write_region(&dir, "warm.txt", "reduction", "40", "1");
    let warm = cli(
        &["schedule", &warm_region, "--cache", cache.to_str().unwrap()],
        &dir,
    );
    assert!(warm.status.success());
    assert!(cache.exists());

    let daemon = start_daemon(&dir, &socket, &["--cache", cache.to_str().unwrap()]);

    // Distinct regions served concurrently, each checked byte-for-byte
    // against the one-shot CLI (cache off: certified hits make cache
    // on/off identical).
    let cases = [
        ("a.txt", "mixed", "50", "3", "par"),
        ("b.txt", "scan", "70", "4", "amd"),
        ("c.txt", "transform", "45", "5", "seq"),
    ];
    let sock = socket.to_string_lossy().into_owned();
    let mut expected = Vec::new();
    let mut paths = Vec::new();
    for (name, pattern, size, seed, sched) in &cases {
        let path = write_region(&dir, name, pattern, size, seed);
        let one = cli(
            &["schedule", &path, "--no-cache", "--scheduler", sched],
            &dir,
        );
        assert!(one.status.success());
        expected.push(one.stdout);
        paths.push(path);
    }
    let handles: Vec<_> = cases
        .iter()
        .zip(&paths)
        .map(|((_, _, _, _, sched), path)| {
            let (dir, sock, path, sched) =
                (dir.clone(), sock.clone(), path.clone(), sched.to_string());
            std::thread::spawn(move || {
                cli(
                    &[
                        "request",
                        "--socket",
                        &sock,
                        "schedule",
                        &path,
                        "--scheduler",
                        &sched,
                    ],
                    &dir,
                )
            })
        })
        .collect();
    for (h, want) in handles.into_iter().zip(&expected) {
        let out = h.join().unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            &out.stdout, want,
            "concurrent response differs from one-shot CLI output"
        );
    }

    // Stats over the same socket: the preloaded + newly inserted entries
    // are all visible through one shared cache.
    let stats = cli(&["request", "--socket", &sock, "stats"], &dir);
    assert!(stats.status.success());
    let stats_text = String::from_utf8_lossy(&stats.stdout).into_owned();
    assert!(stats_text.contains("requests:"), "{stats_text}");
    assert!(stats_text.contains("cache:"), "{stats_text}");
    assert!(stats_text.contains("regions compiled"), "{stats_text}");

    // SIGTERM: graceful drain, atomic persist, socket removed.
    stop_daemon(daemon);
    assert!(!socket.exists(), "socket file must be removed on shutdown");
    assert!(cache.exists());

    // The persisted cache must reload cleanly and still hold the warm
    // entry: a one-shot compile of the warm region over it hits.
    let replay = cli(
        &[
            "schedule",
            &warm_region,
            "--cache",
            cache.to_str().unwrap(),
            "--cache-stats",
        ],
        &dir,
    );
    assert!(replay.status.success());
    assert_eq!(
        replay.stdout, warm.stdout,
        "replay over persisted cache drifted"
    );
    let replay_err = String::from_utf8_lossy(&replay.stderr);
    assert!(
        replay_err.contains("cache: 1 hits"),
        "expected a cache hit on the persisted file: {replay_err}"
    );
}

#[test]
fn overload_and_deadline_rejections_are_typed() {
    let dir = tmp_dir("overload");
    let socket = dir.join("daemon.sock");
    let region = write_region(&dir, "r.txt", "vector", "50", "9");
    // Zero queue capacity: every schedule/suite submission bounces.
    let daemon = start_daemon(&dir, &socket, &["--queue", "0"]);
    let sock = socket.to_string_lossy().into_owned();

    let out = cli(&["request", "--socket", &sock, "schedule", &region], &dir);
    assert!(
        !out.status.success(),
        "overloaded request must exit nonzero"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("overloaded"), "stderr: {err}");

    // Inline requests still work on an overloaded daemon.
    let stats = cli(&["request", "--socket", &sock, "stats"], &dir);
    assert!(stats.status.success());
    assert!(String::from_utf8_lossy(&stats.stdout).contains("1 overloaded"));
    stop_daemon(daemon);

    // A zero deadline on a working daemon expires in the queue.
    let socket2 = dir.join("daemon2.sock");
    let daemon2 = start_daemon(&dir, &socket2, &[]);
    let sock2 = socket2.to_string_lossy().into_owned();
    let out = cli(
        &[
            "request",
            "--socket",
            &sock2,
            "schedule",
            &region,
            "--deadline-ms",
            "0",
        ],
        &dir,
    );
    assert!(!out.status.success(), "expired request must exit nonzero");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("expired"), "stderr: {err}");
    stop_daemon(daemon2);
}

#[test]
fn suite_request_is_byte_identical_to_the_one_shot_pipeline() {
    let dir = tmp_dir("suite");
    let socket = dir.join("daemon.sock");
    let daemon = start_daemon(&dir, &socket, &[]);
    let sock = socket.to_string_lossy().into_owned();
    let out = cli(
        &["request", "--socket", &sock, "suite", "--seed", "5"],
        &dir,
    );
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    // Same run in-process through the pipeline, rendered through the same
    // function the daemon uses: the daemon's streaming merge must produce
    // the byte-identical payload, not just the same fingerprint line.
    let suite = gpu_aco::bench_workloads::Suite::generate(
        &gpu_aco::bench_workloads::SuiteConfig::scaled(5, 0.008),
    );
    let occ = gpu_aco::machine::OccupancyModel::vega_like();
    let mut cfg =
        gpu_aco::compile::PipelineConfig::paper(gpu_aco::compile::SchedulerKind::ParallelAco, 0);
    cfg.aco.blocks = 4;
    cfg.aco.pass2_gate_cycles = 1;
    let run = gpu_aco::compile::compile_suite(&suite, &occ, &cfg);
    let want_payload = gpu_aco::serve::render::suite_report(&run);
    assert_eq!(
        text, want_payload,
        "daemon suite payload differs from the one-shot pipeline"
    );
    let want = format!(
        "fingerprint {:#018x}",
        gpu_aco::verify::suite_fingerprint(&run)
    );
    assert!(
        text.lines().any(|l| l == want),
        "suite response {text:?} lacks {want:?}"
    );
    // The incremental fingerprint folded during the streaming merge must
    // equal the whole-run recomputation the renderer prints.
    assert_eq!(run.fingerprint, gpu_aco::verify::suite_fingerprint(&run));

    // The stats payload surfaces the merge-overlap latency split.
    let stats = cli(&["request", "--socket", &sock, "stats"], &dir);
    assert!(stats.status.success());
    let stats_text = String::from_utf8_lossy(&stats.stdout).into_owned();
    let phases = stats_text
        .lines()
        .find(|l| l.starts_with("suite_phases_us:"))
        .unwrap_or_else(|| panic!("stats lacks suite_phases_us line: {stats_text}"));
    assert!(
        phases.contains("(overlapped "),
        "phases line lacks overlap split: {phases}"
    );
    stop_daemon(daemon);
}
