//! Property-based tests over randomly generated DDGs: the core invariants
//! every component must uphold regardless of region shape.

use gpu_aco::heuristics::{Heuristic, ListScheduler};
use gpu_aco::ir::{Cycle, DdgBuilder, InstrId, Reg, Schedule};
use gpu_aco::machine::OccupancyModel;
use gpu_aco::pressure::{prp_of_order, PressureTracker, RegUniverse};
use proptest::prelude::*;
use sched_ir::Ddg;

/// Strategy: a random SSA-form DAG of up to `max_n` instructions. Edges go
/// from lower to higher indices (acyclic by construction); each instruction
/// defines one register and uses the values of its predecessors.
fn arb_ddg(max_n: usize) -> impl Strategy<Value = Ddg> {
    (2..max_n).prop_flat_map(|n| {
        let edge_bits = proptest::collection::vec(any::<u64>(), n);
        let lats = proptest::collection::vec(1u16..24, n);
        (Just(n), edge_bits, lats).prop_map(|(n, bits, lats)| {
            let mut b = DdgBuilder::new();
            let ids: Vec<InstrId> = (0..n)
                .map(|i| {
                    // Predecessors: up to 3 earlier nodes chosen from bits.
                    let preds: Vec<usize> = (0..i)
                        .filter(|j| (bits[i] >> (j % 48)) & 1 == 1)
                        .take(3)
                        .collect();
                    b.instr(
                        format!("i{i}"),
                        [Reg::vgpr(i as u32)],
                        preds.iter().map(|&p| Reg::vgpr(p as u32)),
                    )
                })
                .collect();
            for i in 0..n {
                let preds: Vec<usize> = (0..i)
                    .filter(|j| (bits[i] >> (j % 48)) & 1 == 1)
                    .take(3)
                    .collect();
                for p in preds {
                    b.edge(ids[p], ids[i], lats[i]).expect("valid edge");
                }
            }
            b.build().expect("acyclic by construction")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The transitive-closure ready-list UB really bounds the ready list at
    /// every step of any greedy construction.
    #[test]
    fn ready_list_never_exceeds_ub(ddg in arb_ddg(40)) {
        let ub = ddg.transitive_closure().ready_list_ub();
        let mut pending: Vec<usize> = ddg.ids().map(|i| ddg.preds(i).len()).collect();
        let mut ready: Vec<InstrId> = ddg.roots().collect();
        while let Some(id) = ready.pop() {
            prop_assert!(ready.len() < ub, "ready list {} > UB {ub}", ready.len() + 1);
            for &(s, _) in ddg.succs(id) {
                pending[s.index()] -= 1;
                if pending[s.index()] == 0 {
                    ready.push(s);
                }
            }
        }
    }

    /// Every heuristic schedule validates and sits at or above the LB.
    #[test]
    fn heuristic_schedules_are_feasible(ddg in arb_ddg(36), h_idx in 0usize..3) {
        let occ = OccupancyModel::vega_like();
        let r = ListScheduler::new(Heuristic::ALL[h_idx]).schedule(&ddg, &occ);
        prop_assert!(r.schedule.validate(&ddg).is_ok());
        prop_assert!(r.length >= ddg.schedule_length_lb());
        prop_assert!(r.length >= ddg.len() as Cycle);
    }

    /// PRP of an order is permutation-stable under recomputation and always
    /// at least the region's RP lower bound.
    #[test]
    fn prp_respects_lower_bound(ddg in arb_ddg(36)) {
        let occ = OccupancyModel::vega_like();
        let order = ListScheduler::new(Heuristic::LastUseCount).order(&ddg, &occ);
        let prp = prp_of_order(&ddg, &order);
        let lb = ddg.rp_lower_bound();
        for c in 0..2 {
            prop_assert!(prp[c] as usize >= lb[c], "class {c}: PRP {} < LB {}", prp[c], lb[c]);
        }
    }

    /// The incremental pressure tracker's current count returns to the
    /// region's live-out count after a full issue sequence.
    #[test]
    fn tracker_drains_to_live_outs(ddg in arb_ddg(36)) {
        let universe = RegUniverse::new(&ddg);
        let mut t = PressureTracker::new(&universe);
        for &id in ddg.topo_order() {
            t.issue(id);
        }
        let stats = ddg.reg_stats();
        for c in 0..2 {
            prop_assert_eq!(t.current()[c] as usize, stats.live_out[c]);
        }
    }

    /// `Schedule::from_order` over a topological order is always feasible,
    /// and compacting its own order is idempotent on length.
    #[test]
    fn from_order_roundtrip(ddg in arb_ddg(36)) {
        let order: Vec<InstrId> = ddg.topo_order().to_vec();
        let s = Schedule::from_order(&ddg, &order);
        prop_assert!(s.validate(&ddg).is_ok());
        let again = Schedule::from_order(&ddg, &s.order());
        prop_assert!(again.length() <= s.length());
        prop_assert!(again.validate(&ddg).is_ok());
    }

    /// The earliest-start analysis lower-bounds every valid schedule.
    #[test]
    fn earliest_starts_bound_schedules(ddg in arb_ddg(30), h_idx in 0usize..3) {
        let occ = OccupancyModel::vega_like();
        let r = ListScheduler::new(Heuristic::ALL[h_idx]).schedule(&ddg, &occ);
        let est = ddg.earliest_starts();
        for id in ddg.ids() {
            prop_assert!(
                r.schedule.cycle(id) >= est[id.index()],
                "{id} scheduled before its earliest start"
            );
        }
    }
}
