//! Umbrella crate for the GPU-parallel ACO instruction-scheduling
//! reproduction (Shobaki et al., *Instruction Scheduling for the GPU on the
//! GPU*, CGO 2024).
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can use a single dependency:
//!
//! * [`ir`] — instructions, registers, DDGs, bounds ([`sched_ir`])
//! * [`machine`] — issue and occupancy models ([`machine_model`])
//! * [`pressure`] — live-range tracking and APRP cost ([`reg_pressure`])
//! * [`heuristics`] — list schedulers: CP, LUC, AMD-like ([`list_sched`])
//! * [`sim`] — the SIMT GPU cost simulator ([`gpu_sim`])
//! * [`scheduler`] — the sequential and GPU-parallel ACO schedulers ([`aco`])
//! * [`compile`] — the compilation pipeline with its filters ([`pipeline`])
//! * [`exact`] — branch-and-bound optimality oracle for small regions
//!   ([`exact_sched`])
//! * [`bench_workloads`] — rocPRIM-shaped DDG generators ([`workloads`])
//! * [`verify`] — independent schedule certification, DDG/config lints,
//!   and determinism checks ([`sched_verify`])
//! * [`analyze`] — exact static dataflow analysis with S-code diagnostics
//!   and baseline suppression ([`sched_analyze`])
//! * [`serve`] — the scheduling-as-a-service daemon: line-delimited
//!   protocol, admission control, one warm shared cache ([`sched_serve`])
//! * [`tuning`] — the per-class bandit auto-tuner and pheromone
//!   warm-start store behind `--tune` ([`aco_tune`])
//!
//! # Quickstart
//!
//! ```
//! use gpu_aco::ir::figure1;
//! use gpu_aco::scheduler::{AcoConfig, SequentialScheduler};
//! use gpu_aco::machine::OccupancyModel;
//!
//! let ddg = figure1::ddg();
//! let occ = OccupancyModel::vega_like();
//! let mut sched = SequentialScheduler::new(AcoConfig::small(7));
//! let result = sched.schedule(&ddg, &occ);
//! result.schedule.validate(&ddg).unwrap();
//! ```

pub use aco as scheduler;
pub use aco_tune as tuning;
pub use exact_sched as exact;
pub use gpu_sim as sim;
pub use list_sched as heuristics;
pub use machine_model as machine;
pub use pipeline as compile;
pub use reg_pressure as pressure;
pub use sched_analyze as analyze;
pub use sched_ir as ir;
pub use sched_serve as serve;
pub use sched_verify as verify;
pub use workloads as bench_workloads;
