//! Command-line front end: schedule a region from a text file with any of
//! the workspace's schedulers.
//!
//! ```text
//! gpu-aco-cli schedule <region.txt> [--scheduler amd|cp|luc|seq|par|host|exact]
//!                      [--seed N] [--blocks N] [--threads N] [--unit-aprp]
//!                      [--dot <out.dot>]
//! gpu-aco-cli schedule <region.txt> --cache <cache.txt> [--cache-stats] [--no-cache]
//! gpu-aco-cli schedule <region.txt> --tune <tune.txt> [--cache <cache.txt>] [--no-tune]
//! gpu-aco-cli schedule <region.txt>... --batch [--seed N] [--blocks N] [--unit-aprp]
//! gpu-aco-cli generate <pattern> <size> [--seed N]     # emit a region file
//! gpu-aco-cli inspect <region.txt>                     # bounds and stats
//! gpu-aco-cli verify <region.txt> [--scheduler ...|all] [--pedantic]
//! gpu-aco-cli analyze <region.txt>... [--json] [--pedantic]
//!                     [--baseline <file>] [--write-baseline <file>]
//! ```
//!
//! `--cache <cache.txt>` routes the compilation through the pipeline's
//! content-addressed [`gpu_aco::compile::ScheduleCache`], persisted at the
//! given path across invocations: a region whose DDG content and
//! scheduling configuration match a stored entry skips the ACO search
//! entirely (the hit is re-certified before adoption, so a tampered cache
//! file can never smuggle in a wrong schedule). `--no-cache` runs the same
//! pipeline path with the cache disabled — the printed schedule is
//! bitwise identical either way. `--cache-stats` reports the
//! hit/miss/insert/bypass/eviction counters on stderr.
//!
//! `--tune <tune.txt>` additionally routes ACO compilations through the
//! self-tuning store (`aco_tune`): the region's feature class picks a
//! tuned `AcoConfig` arm, a structure-fingerprint match seeds the
//! pheromone trails from the cached winner's order, and the outcome is
//! recorded back into `tune.txt` for the next invocation. Tuning *changes
//! the search inputs*, so tuned schedules may legitimately differ from
//! (never regress against certification of) the untuned output; the
//! schedule cache keys tuned entries separately, which is why `--tune`
//! and `--cache` compose without polluting the untuned entries.
//! `--no-tune` forces the untuned path even when a tuning store is
//! configured elsewhere (it is also the default).
//!
//! `--batch` schedules several regions in one cooperative multi-region
//! launch pair (the paper's Section VII proposal): the colony's blocks are
//! split across the regions, the launch/allocation/transfer overheads are
//! paid once per pass, and each region's schedule is bitwise-identical to
//! a solo run with its block share.
//!
//! `verify` runs the independent verification layer (`sched-verify`): it
//! lints the region and the ACO configuration, schedules the region with
//! the selected scheduler(s), re-derives every claim each scheduler makes
//! (order, pressure, occupancy, length, bounds, two-pass invariant), and
//! exits nonzero if any error-severity diagnostic is found.
//!
//! `analyze` runs the exact static dataflow passes (`sched-analyze`):
//! S001 transitive-redundant edges, S002 cycles with a minimal witness,
//! S003 orphan nodes, S004 latencies that contradict the machine model,
//! S005/S006 infeasible pressure/length claims against the AMD heuristic's
//! schedule, and the S007 cache-key coverage check. Findings carry source
//! spans from the region file; `--json` emits the machine-readable report
//! (`sched-analyze-findings/v1`) the CI deny-gate consumes; a baseline
//! file suppresses known findings. Exit is nonzero iff an unsuppressed
//! deny-level finding remains.
//!
//! The region file format is documented in [`sched_ir::textir`]; `generate`
//! produces it from the rocPRIM-shaped workload generators.

use gpu_aco::heuristics::{Heuristic, ListScheduler};
use gpu_aco::machine::OccupancyModel;
use gpu_aco::scheduler::{
    AcoConfig, HostParallelScheduler, ParallelScheduler, SequentialScheduler,
};
use sched_ir::{textir, Ddg, Schedule};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  gpu-aco-cli schedule <region.txt> [--scheduler amd|cp|luc|seq|par|host|exact]
                       [--seed N] [--blocks N] [--threads N] [--unit-aprp]
                       [--dot <out.dot>]
  gpu-aco-cli schedule <region.txt> --cache <cache.txt> [--cache-stats] [--no-cache]
  gpu-aco-cli schedule <region.txt> --tune <tune.txt> [--cache <cache.txt>] [--no-tune]
  gpu-aco-cli schedule <region.txt>... --batch [--seed N] [--blocks N] [--unit-aprp]
  gpu-aco-cli generate <pattern> <size> [--seed N]
      patterns: reduction scan transform vector stencil sort gather random mixed
  gpu-aco-cli inspect <region.txt>
  gpu-aco-cli verify <region.txt> [--scheduler amd|cp|luc|seq|par|host|exact|all]
                     [--seed N] [--blocks N] [--threads N] [--unit-aprp] [--pedantic]
  gpu-aco-cli analyze <region.txt>... [--json] [--pedantic]
                      [--baseline <file>] [--write-baseline <file>]
  gpu-aco-cli serve [--socket <path>] [--cache <cache.txt>]
                    [--tune [<tune.txt>]] [--workers N] [--queue N]
  gpu-aco-cli request --socket <path> schedule <region.txt>
                      [--scheduler amd|cp|seq|par] [--seed N] [--blocks N]
                      [--unit-aprp] [--deadline-ms N]
  gpu-aco-cli request --socket <path> suite [--seed N] [--scale F]
                      [--scheduler amd|cp|seq|par|batched] [--blocks N]
                      [--gate N] [--unit-aprp] [--deadline-ms N]
  gpu-aco-cli request --socket <path> stats|flush

  --json        emit the sched-analyze-findings/v1 JSON report on stdout
  --pedantic    include pedantic-level findings (S001) in the report
  --baseline F  suppress the findings recorded in baseline file F
  --write-baseline F  write a baseline accepting every current finding to F
  --threads N   host worker threads for the host-parallel scheduler
                (default: all available cores; results are identical at
                any value)
  --cache F     compile via the pipeline's certified schedule cache,
                persisted at F across invocations (schedulers amd|cp|seq|par);
                hits skip the ACO search and are re-certified before adoption
  --no-cache    same pipeline path with the cache disabled (identical output)
  --cache-stats report hit/miss/insert/bypass/eviction counters on stderr
  --tune F      self-tune ACO compilations through the bandit/warm-start
                store persisted at F (created if missing): tuned runs may
                pick a different AcoConfig arm and warm-start the pheromone
                trails, so the schedule may differ from the untuned output;
                composes with --cache (tuned entries are keyed separately,
                untuned cache entries stay byte-identical)
  --no-tune     force the untuned fixed-config path (the default); with
                both flags, --no-tune wins and the store file is untouched

  serve         run the scheduling daemon: requests on stdin (default) or a
                Unix socket (--socket), one warm schedule cache shared by
                every client, preloaded from --cache and persisted back on
                shutdown/flush; --tune enables the shared self-tuning store
                (with FILE: preloaded/persisted like the cache; without:
                in-memory for the daemon's lifetime); --workers compile
                threads (default: all cores), --queue admission capacity
                (default 256)
  request       client for a running daemon: sends one request over the
                socket and prints the response payload; byte-identical to
                the one-shot `schedule --cache` output when the daemon runs
                untuned — a daemon started with --tune answers from its
                tuned/warm-started search instead, so compare against
                `schedule --tune` in that case; exits nonzero on
                err/overloaded/expired responses";

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("schedule") => schedule(&args[1..]),
        Some("generate") => generate(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        Some("verify") => verify(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("request") => request(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("missing command".into()),
    }
}

/// Pulls `--flag value` out of an argument list.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The non-flag arguments, skipping the values of value-taking flags.
fn positional_args<'a>(args: &'a [String], value_flags: &[&str]) -> Vec<&'a String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
        } else if value_flags.contains(&a.as_str()) {
            skip = true;
        } else if !a.starts_with("--") {
            out.push(a);
        }
    }
    out
}

/// `--threads`: host worker threads for the host-parallel scheduler.
/// Defaults to every available core; schedules are identical at any value
/// (the host colony's merge is deterministic), so this is purely a
/// wall-clock knob.
fn host_threads(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--threads") {
        Some(s) => s
            .parse::<usize>()
            .map(|n| n.max(1))
            .map_err(|_| "--threads must be an integer".into()),
        None => Ok(std::thread::available_parallelism().map_or(1, |n| n.get())),
    }
}

fn load_region(path: &str) -> Result<Ddg, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    textir::parse(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn print_schedule(ddg: &Ddg, schedule: &Schedule) {
    let order = schedule.order();
    let mut next = 0;
    print!("schedule:");
    for id in order {
        let c = schedule.cycle(id);
        while next < c {
            print!(" _");
            next += 1;
        }
        print!(" {}", ddg.instr(id).name());
        next = c + 1;
    }
    println!();
}

fn schedule(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--batch") {
        return schedule_batched(args);
    }
    if args
        .iter()
        .any(|a| a == "--cache" || a == "--no-cache" || a == "--cache-stats" || a == "--tune")
    {
        return schedule_cached(args);
    }
    let path = args.first().ok_or("schedule needs a region file")?;
    let ddg = load_region(path)?;
    let occ = if args.iter().any(|a| a == "--unit-aprp") {
        OccupancyModel::unit()
    } else {
        OccupancyModel::vega_like()
    };
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "--seed must be an integer")?
        .unwrap_or(0);
    let blocks: u32 = flag_value(args, "--blocks")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "--blocks must be an integer")?
        .unwrap_or(32);
    let which = flag_value(args, "--scheduler").unwrap_or_else(|| "par".into());
    // Validate --threads up front so a bad value errors even when the
    // selected scheduler never reads it.
    let threads = host_threads(args)?;
    let cfg = AcoConfig {
        blocks,
        ..AcoConfig::paper(seed)
    };

    let (name, sched, prp, extra) = match which.as_str() {
        "amd" | "cp" | "luc" => {
            let h = match which.as_str() {
                "amd" => Heuristic::AmdMaxOccupancy,
                "cp" => Heuristic::CriticalPath,
                _ => Heuristic::LastUseCount,
            };
            let r = ListScheduler::new(h).schedule(&ddg, &occ);
            (
                format!("{h:?} list scheduler"),
                r.schedule,
                r.prp,
                String::new(),
            )
        }
        "seq" => {
            let r = SequentialScheduler::new(cfg).schedule(&ddg, &occ);
            let extra = format!(
                ", modeled CPU time {:.1} us ({} + {} iterations)",
                r.time_us, r.pass1.iterations, r.pass2.iterations
            );
            ("sequential ACO".into(), r.schedule, r.prp, extra)
        }
        "par" => {
            let out = ParallelScheduler::new(cfg).schedule(&ddg, &occ);
            let extra = format!(
                ", modeled GPU time {:.1} us ({} + {} iterations)",
                out.gpu.total_us(),
                out.result.pass1.iterations,
                out.result.pass2.iterations
            );
            (
                "parallel ACO".into(),
                out.result.schedule,
                out.result.prp,
                extra,
            )
        }
        "host" => {
            let r = HostParallelScheduler::new(cfg, threads).schedule(&ddg, &occ);
            (
                format!("host-parallel ACO ({threads} threads)"),
                r.schedule,
                r.prp,
                String::new(),
            )
        }
        "exact" => {
            if ddg.len() > exact_sched::MAX_EXACT_SIZE {
                return Err(format!(
                    "exact search supports at most {} instructions (region has {})",
                    exact_sched::MAX_EXACT_SIZE,
                    ddg.len()
                ));
            }
            let r = exact_sched::two_pass_optimum(&ddg, &occ, &exact_sched::BnbConfig::default());
            let extra = format!(
                ", {} search nodes{}",
                r.nodes,
                if r.proven_optimal {
                    ", proven optimal"
                } else {
                    " (limit hit)"
                }
            );
            ("exact B&B".into(), r.schedule, r.prp, extra)
        }
        other => return Err(format!("unknown scheduler `{other}`")),
    };

    sched
        .validate(&ddg)
        .map_err(|e| format!("internal error: invalid schedule: {e}"))?;
    println!(
        "{name}: {} instructions in {} cycles ({} stalls), VGPR PRP {}, SGPR PRP {}, \
         occupancy {}{extra}",
        ddg.len(),
        sched.length(),
        sched.stalls(),
        prp[0],
        prp[1],
        occ.occupancy(prp),
    );
    print_schedule(&ddg, &sched);
    if let Some(out) = flag_value(args, "--dot") {
        std::fs::write(&out, sched_ir::dot::to_dot_with_schedule(&ddg, &sched))
            .map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}

/// `schedule ... --cache/--no-cache/--tune`: compile through the
/// pipeline's region flow so the content-addressed schedule cache can
/// answer repeat regions. With `--cache FILE` the cache is loaded from
/// (and saved back to) `FILE`; `--no-cache` runs the identical pipeline
/// path without it, so the printed schedule is bitwise comparable between
/// the two. `--tune FILE` layers the self-tuning store on top: ACO
/// compilations draw an arm-adjusted config and a pheromone warm hint
/// from `FILE` and record the outcome back; tuned cache entries key
/// separately, so the composition never pollutes untuned lookups.
fn schedule_cached(args: &[String]) -> Result<(), String> {
    use gpu_aco::compile::{
        compile_region, compile_region_warm, observe_outcome, tunable, tuned_solo_inputs,
        PipelineConfig, ScheduleCache, SchedulerKind,
    };
    use gpu_aco::tuning::TuneStore;
    use std::path::Path;

    let paths = positional_args(
        args,
        &[
            "--scheduler",
            "--seed",
            "--blocks",
            "--threads",
            "--cache",
            "--tune",
        ],
    );
    let path = paths.first().ok_or("schedule needs a region file")?;
    let ddg = load_region(path)?;
    let occ = if args.iter().any(|a| a == "--unit-aprp") {
        OccupancyModel::unit()
    } else {
        OccupancyModel::vega_like()
    };
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "--seed must be an integer")?
        .unwrap_or(0);
    let blocks: u32 = flag_value(args, "--blocks")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "--blocks must be an integer")?
        .unwrap_or(32);
    let which = flag_value(args, "--scheduler").unwrap_or_else(|| "par".into());
    let kind = match which.as_str() {
        "amd" => SchedulerKind::BaseAmd,
        "cp" => SchedulerKind::CriticalPath,
        "seq" => SchedulerKind::SequentialAco,
        "par" => SchedulerKind::ParallelAco,
        other => {
            return Err(format!(
                "the schedule cache supports --scheduler amd|cp|seq|par, not `{other}`"
            ))
        }
    };
    let mut cfg = PipelineConfig::paper(kind, seed);
    cfg.aco.blocks = blocks;

    let no_cache = args.iter().any(|a| a == "--no-cache");
    let cache_file = flag_value(args, "--cache");
    let cache = match (&cache_file, no_cache) {
        (Some(f), false) if Path::new(f).exists() => Some(
            ScheduleCache::load_from(Path::new(f))
                .map_err(|e| format!("loading cache {f}: {e}"))?,
        ),
        (Some(_), false) => Some(ScheduleCache::new()),
        _ => None,
    };
    // --no-tune beats --tune: the store file is neither read nor written.
    let no_tune = args.iter().any(|a| a == "--no-tune");
    let tune_file = flag_value(args, "--tune").filter(|_| !no_tune);
    let tune = match &tune_file {
        Some(f) if Path::new(f).exists() => Some(
            TuneStore::load_from(Path::new(f))
                .map_err(|e| format!("loading tuning store {f}: {e}"))?,
        ),
        Some(_) => Some(TuneStore::new()),
        None => None,
    };
    let comp = match tune.as_ref().filter(|_| tunable(kind)) {
        Some(store) => {
            let (tuned_cfg, warm, tag) = tuned_solo_inputs(&ddg, 0, &cfg, store);
            let comp = match &cache {
                Some(c) => c.compile_solo_with(&ddg, &occ, &tuned_cfg, warm.as_ref()),
                None => compile_region_warm(&ddg, &occ, &tuned_cfg, warm.as_ref()),
            };
            observe_outcome(store, &tag, &comp);
            comp
        }
        None => match &cache {
            Some(c) => c.compile_solo(&ddg, &occ, &cfg),
            None => compile_region(&ddg, &occ, &cfg),
        },
    };
    // The daemon (`serve`) renders through the same function, which is
    // what keeps its responses byte-identical to this command's output.
    let report = gpu_aco::serve::render::schedule_report(&ddg, &occ, kind, &comp)?;
    print!("{report}");
    if args.iter().any(|a| a == "--cache-stats") {
        let s = cache.as_ref().map(ScheduleCache::stats).unwrap_or_default();
        eprintln!(
            "cache: {} hits, {} misses, {} inserts, {} bypasses, {} evictions",
            s.hits, s.misses, s.inserts, s.bypasses, s.evictions
        );
    }
    if let (Some(c), Some(f)) = (&cache, &cache_file) {
        c.save_to(Path::new(f))
            .map_err(|e| format!("writing cache {f}: {e}"))?;
    }
    if let (Some(t), Some(f)) = (&tune, &tune_file) {
        t.save_to(Path::new(f))
            .map_err(|e| format!("writing tuning store {f}: {e}"))?;
    }
    Ok(())
}

/// `schedule ... --batch`: one cooperative launch pair for all the regions.
fn schedule_batched(args: &[String]) -> Result<(), String> {
    use gpu_aco::scheduler::batch_block_split;

    if args
        .iter()
        .any(|a| a == "--cache" || a == "--no-cache" || a == "--cache-stats" || a == "--tune")
    {
        return Err("the cache and tuning flags are not supported with --batch".into());
    }
    let paths = positional_args(
        args,
        &["--scheduler", "--seed", "--blocks", "--threads", "--dot"],
    );
    if paths.is_empty() {
        return Err("schedule --batch needs at least one region file".into());
    }
    // --threads is accepted (and validated) for uniformity, but the batch
    // path always runs the simulated-GPU scheduler, which never reads it.
    host_threads(args)?;
    let occ = if args.iter().any(|a| a == "--unit-aprp") {
        OccupancyModel::unit()
    } else {
        OccupancyModel::vega_like()
    };
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "--seed must be an integer")?
        .unwrap_or(0);
    let blocks: u32 = flag_value(args, "--blocks")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "--blocks must be an integer")?
        .unwrap_or(32);
    if paths.len() as u32 > blocks {
        return Err(format!(
            "a batch of {} regions oversubscribes the {blocks}-block colony; \
             pass fewer regions or raise --blocks",
            paths.len()
        ));
    }
    let cfg = AcoConfig {
        blocks,
        ..AcoConfig::paper(seed)
    };

    let regions: Vec<Ddg> = paths
        .iter()
        .map(|p| load_region(p))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&Ddg> = regions.iter().collect();
    let batch = ParallelScheduler::new(cfg).schedule_batch(&refs, &occ);
    let split = batch_block_split(blocks, refs.len() as u32);

    println!(
        "batched parallel ACO: {} regions, {blocks}-block colony split {split:?}",
        refs.len()
    );
    for (pos, (path, outcome)) in paths.iter().zip(&batch.outcomes).enumerate() {
        let r = &outcome.result;
        r.schedule
            .validate(&regions[pos])
            .map_err(|e| format!("internal error: invalid schedule for {path}: {e}"))?;
        println!(
            "  {path}: {} instructions in {} cycles, VGPR PRP {}, occupancy {} \
             ({} blocks, {} + {} iterations)",
            regions[pos].len(),
            r.length,
            r.prp[0],
            r.occupancy,
            split[pos],
            r.pass1.iterations,
            r.pass2.iterations,
        );
    }
    let saving = if batch.individual_us > 0.0 {
        100.0 * (batch.individual_us - batch.batched_us) / batch.individual_us
    } else {
        0.0
    };
    println!(
        "modeled GPU time: batched {:.1} us vs {:.1} us individually ({saving:.1}% saved)",
        batch.batched_us, batch.individual_us
    );
    Ok(())
}

fn verify(args: &[String]) -> Result<(), String> {
    use gpu_aco::verify as sv;

    let path = args.first().ok_or("verify needs a region file")?;
    let ddg = load_region(path)?;
    let occ = if args.iter().any(|a| a == "--unit-aprp") {
        OccupancyModel::unit()
    } else {
        OccupancyModel::vega_like()
    };
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "--seed must be an integer")?
        .unwrap_or(0);
    let blocks: u32 = flag_value(args, "--blocks")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "--blocks must be an integer")?
        .unwrap_or(32);
    let cfg = AcoConfig {
        blocks,
        ..AcoConfig::paper(seed)
    };

    let mut diags = if args.iter().any(|a| a == "--pedantic") {
        sv::lint_ddg_pedantic(&ddg)
    } else {
        sv::lint_ddg(&ddg)
    };
    diags.extend(sv::lint_config(&cfg));

    // Structural lint errors (non-SSA regions, cycles) make the region
    // unschedulable — report them instead of handing the schedulers an
    // input they are allowed to reject violently.
    if sv::has_errors(&diags) {
        print!("{}", sv::render(&diags));
        return Err("verification failed: the region or configuration is invalid".into());
    }

    let which = flag_value(args, "--scheduler").unwrap_or_else(|| "all".into());
    // Validate --threads up front so a bad value errors even when the
    // host scheduler is not among the certified set.
    let threads = host_threads(args)?;
    let schedulers: Vec<&str> = match which.as_str() {
        "all" => vec!["amd", "cp", "luc", "seq", "par", "host", "exact"],
        s @ ("amd" | "cp" | "luc" | "seq" | "par" | "host" | "exact") => vec![s],
        other => return Err(format!("unknown scheduler `{other}`")),
    };
    let mut certified = 0usize;
    for s in schedulers {
        let before = diags.len();
        match s {
            "amd" | "cp" | "luc" => {
                let h = match s {
                    "amd" => Heuristic::AmdMaxOccupancy,
                    "cp" => Heuristic::CriticalPath,
                    _ => Heuristic::LastUseCount,
                };
                let r = ListScheduler::new(h).schedule(&ddg, &occ);
                diags.extend(sv::certify_list(&ddg, &occ, &r));
            }
            "seq" => {
                let r = SequentialScheduler::new(cfg).schedule(&ddg, &occ);
                diags.extend(sv::certify_aco(&ddg, &occ, &cfg, &r));
            }
            "par" => {
                let out = ParallelScheduler::new(cfg).schedule(&ddg, &occ);
                diags.extend(sv::certify_aco(&ddg, &occ, &cfg, &out.result));
            }
            "host" => {
                let r = HostParallelScheduler::new(cfg, threads).schedule(&ddg, &occ);
                diags.extend(sv::certify_aco(&ddg, &occ, &cfg, &r));
                diags.extend(sv::check_host_determinism(
                    &ddg,
                    &occ,
                    &cfg,
                    &[1, 2, threads],
                ));
            }
            "exact" => {
                if ddg.len() > exact_sched::MAX_EXACT_SIZE {
                    println!(
                        "verify: skipping exact search ({} instructions > limit {})",
                        ddg.len(),
                        exact_sched::MAX_EXACT_SIZE
                    );
                    continue;
                }
                let r =
                    exact_sched::two_pass_optimum(&ddg, &occ, &exact_sched::BnbConfig::default());
                diags.extend(sv::certify_exact(&ddg, &occ, &r));
            }
            _ => unreachable!(),
        }
        certified += 1;
        if diags.len() == before {
            println!("verify: {s}: ok");
        }
    }

    print!("{}", sv::render(&diags));
    if sv::has_errors(&diags) {
        let errors = diags
            .iter()
            .filter(|d| d.severity == sv::Severity::Error)
            .count();
        return Err(format!(
            "verification failed: {errors} error-severity diagnostic(s)"
        ));
    }
    println!(
        "verify: {certified} scheduler(s) certified clean on {} instructions",
        ddg.len()
    );
    Ok(())
}

/// `analyze`: the exact S-code dataflow passes over one or more region
/// files, plus the once-per-invocation S007 cache-key coverage check.
///
/// Files are parsed with [`textir::parse_raw`] so structurally broken
/// regions (cycles, dangling edge endpoints) still analyze — a cyclic
/// region is an S002 finding with a minimal witness, not a parse error.
/// When a region does build into a valid DDG, the AMD heuristic schedules
/// it and the claimed length/PRP are checked against the exact lower
/// bounds (S005/S006).
fn analyze(args: &[String]) -> Result<(), String> {
    use gpu_aco::analyze as sa;
    use gpu_aco::compile::{check_config_drift, PipelineConfig, SchedulerKind};

    let paths = positional_args(args, &["--baseline", "--write-baseline"]);
    if paths.is_empty() {
        return Err("analyze needs at least one region file".into());
    }
    let occ = OccupancyModel::vega_like();
    let mut findings = Vec::new();
    for path in &paths {
        let text =
            std::fs::read_to_string(path.as_str()).map_err(|e| format!("reading {path}: {e}"))?;
        let raw = textir::parse_raw(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        let g = sa::RegionGraph::from_raw(&raw);
        let mut file_findings = sa::analyze_graph(&g);
        if let Ok(ddg) = raw.build() {
            let r = ListScheduler::new(Heuristic::AmdMaxOccupancy).schedule(&ddg, &occ);
            file_findings.extend(sa::check_claims(
                &g,
                &sa::ScheduleClaim {
                    length: r.length as u64,
                    prp: r.prp,
                    source: "amd heuristic",
                },
            ));
        }
        findings.extend(file_findings.into_iter().map(|f| f.in_file(path.as_str())));
    }
    findings.extend(check_config_drift(
        &PipelineConfig::paper(SchedulerKind::ParallelAco, 0),
        &occ,
    ));
    if !args.iter().any(|a| a == "--pedantic") {
        findings.retain(|f| f.level > sa::Level::Pedantic);
    }

    let (findings, suppressed) = match flag_value(args, "--baseline") {
        Some(f) => {
            let text =
                std::fs::read_to_string(&f).map_err(|e| format!("reading baseline {f}: {e}"))?;
            sa::Baseline::parse(&text).apply(findings)
        }
        None => (findings, 0),
    };
    if let Some(out) = flag_value(args, "--write-baseline") {
        std::fs::write(&out, sa::Baseline::accepting(&findings).to_text())
            .map_err(|e| format!("writing baseline {out}: {e}"))?;
        eprintln!("wrote baseline {out} ({} finding(s))", findings.len());
    }

    if args.iter().any(|a| a == "--json") {
        println!("{}", sa::render_json(&findings, suppressed));
    } else {
        print!("{}", sa::render_text(&findings));
        if suppressed > 0 {
            println!("analyze: {suppressed} finding(s) suppressed by baseline");
        }
        if findings.is_empty() {
            println!("analyze: {} file(s): ok", paths.len());
        }
    }
    let deny = findings
        .iter()
        .filter(|f| f.level == sa::Level::Deny)
        .count();
    if deny > 0 {
        return Err(format!("analysis failed: {deny} deny-level finding(s)"));
    }
    Ok(())
}

fn generate(args: &[String]) -> Result<(), String> {
    let pattern = args.first().ok_or("generate needs a pattern")?;
    let size: usize = args
        .get(1)
        .ok_or("generate needs a size")?
        .parse()
        .map_err(|_| "size must be an integer")?;
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "--seed must be an integer")?
        .unwrap_or(0);
    let ddg = match pattern.as_str() {
        "reduction" => workloads::patterns::reduction(size.max(1), seed),
        "scan" => workloads::patterns::scan(size.max(1), seed),
        "transform" => workloads::patterns::transform_chain(size.max(1), 4, seed),
        "vector" => workloads::patterns::vector_transform(size.max(1), 3, 4, seed),
        "stencil" => workloads::patterns::stencil(size.max(1), 2, seed),
        "sort" => workloads::patterns::sort_network(size.next_power_of_two().max(2), seed),
        "gather" => workloads::patterns::gather_chain(size.max(1), 3, seed),
        "random" => workloads::patterns::random_layered(size.max(1), 5, seed),
        "mixed" => workloads::patterns::sized(size.max(2), seed),
        other => return Err(format!("unknown pattern `{other}`")),
    };
    print!("{}", textir::to_text(&ddg));
    Ok(())
}

fn inspect(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("inspect needs a region file")?;
    let ddg = load_region(path)?;
    let occ = OccupancyModel::vega_like();
    let stats = ddg.reg_stats();
    let tc = ddg.transitive_closure();
    println!("instructions     : {}", ddg.len());
    println!("edges            : {}", ddg.edge_count());
    println!("critical path    : {} cycles", ddg.critical_path_length());
    println!("length LB        : {} cycles", ddg.schedule_length_lb());
    println!(
        "ready-list UB    : {} (loose bound {})",
        tc.ready_list_ub(),
        ddg.len()
    );
    println!(
        "RP lower bound   : VGPR {}, SGPR {}",
        ddg.rp_lower_bound()[0],
        ddg.rp_lower_bound()[1]
    );
    println!(
        "live-in / out    : {:?} / {:?}",
        stats.live_in, stats.live_out
    );
    let amd = ListScheduler::new(Heuristic::AmdMaxOccupancy).schedule(&ddg, &occ);
    println!(
        "AMD heuristic    : {} cycles, VGPR PRP {}, occupancy {}",
        amd.length, amd.prp[0], amd.occupancy
    );
    Ok(())
}

/// `serve`: run the scheduling daemon. Stdio transport by default (EOF
/// drains and persists); `--socket PATH` serves concurrent Unix-socket
/// clients until SIGTERM/SIGINT, then drains and persists.
fn serve(args: &[String]) -> Result<(), String> {
    use gpu_aco::serve::ServeConfig;

    let workers = match flag_value(args, "--workers") {
        Some(s) => s
            .parse::<usize>()
            .map(|n| n.max(1))
            .map_err(|_| "--workers must be an integer")?,
        None => std::thread::available_parallelism().map_or(2, |n| n.get()),
    };
    let queue_capacity = match flag_value(args, "--queue") {
        Some(s) => s
            .parse::<usize>()
            .map_err(|_| "--queue must be an integer")?,
        None => 256,
    };
    // `--tune` takes an optional FILE: with one, the store persists there
    // like the cache; bare `--tune` keeps it in memory for the daemon's
    // lifetime.
    let (tune, tune_path) = match args.iter().position(|a| a == "--tune") {
        Some(i) => match args.get(i + 1).filter(|v| !v.starts_with("--")) {
            Some(f) => (true, Some(std::path::PathBuf::from(f))),
            None => (true, None),
        },
        None => (false, None),
    };
    let config = ServeConfig {
        workers,
        queue_capacity,
        cache_path: flag_value(args, "--cache").map(std::path::PathBuf::from),
        tune,
        tune_path,
    };
    match flag_value(args, "--socket") {
        Some(path) => gpu_aco::serve::serve_unix(std::path::Path::new(&path), config)
            .map_err(|e| format!("serve --socket {path}: {e}")),
        None => gpu_aco::serve::serve_stdio(config).map_err(|e| format!("serve: {e}")),
    }
}

/// `request`: one-shot client for a running daemon. Prints the response
/// payload on stdout; `err`, `overloaded` and `expired` responses exit
/// nonzero with the typed condition on stderr.
fn request(args: &[String]) -> Result<(), String> {
    use gpu_aco::serve::proto::{read_response, Response};
    use std::io::{BufReader, Write};
    use std::os::unix::net::UnixStream;

    let socket = flag_value(args, "--socket").ok_or("request needs --socket PATH")?;
    let positional = positional_args(
        args,
        &[
            "--socket",
            "--scheduler",
            "--seed",
            "--blocks",
            "--scale",
            "--gate",
            "--deadline-ms",
        ],
    );
    let command = positional
        .first()
        .ok_or("request needs a command: schedule|suite|stats|flush")?;

    // Assemble the request line from the flags the one-shot commands use.
    let mut opts = String::new();
    for flag in ["--scheduler", "--seed", "--blocks", "--scale", "--gate"] {
        if let Some(v) = flag_value(args, flag) {
            opts.push_str(&format!(" {}={v}", &flag[2..]));
        }
    }
    if args.iter().any(|a| a == "--unit-aprp") {
        opts.push_str(" unit-aprp");
    }
    if let Some(v) = flag_value(args, "--deadline-ms") {
        opts.push_str(&format!(" deadline-ms={v}"));
    }
    let wire = match command.as_str() {
        "stats" => "req cli stats\n".to_string(),
        "flush" => "req cli flush\n".to_string(),
        "suite" => format!("req cli suite{opts}\n"),
        "schedule" => {
            let path = positional
                .get(1)
                .ok_or("request schedule needs a region file")?;
            let text = std::fs::read_to_string(path.as_str())
                .map_err(|e| format!("reading {path}: {e}"))?;
            let text = if text.ends_with('\n') {
                text
            } else {
                text + "\n"
            };
            format!(
                "req cli schedule{opts} ddg {}\n{text}",
                text.lines().count()
            )
        }
        other => return Err(format!("unknown request command `{other}`")),
    };

    let mut stream =
        UnixStream::connect(&socket).map_err(|e| format!("connecting {socket}: {e}"))?;
    stream
        .write_all(wire.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("sending request: {e}"))?;
    let clone = stream.try_clone().map_err(|e| format!("socket: {e}"))?;
    let mut reader = BufReader::new(clone);
    let (_, resp) = read_response(&mut reader)
        .map_err(|e| format!("reading response: {e}"))?
        .ok_or("connection closed before a response arrived")?;
    match resp {
        Response::Ok { payload } => {
            print!("{payload}");
            Ok(())
        }
        Response::Err { message } => Err(format!("server error: {message}")),
        Response::Overloaded { queued, capacity } => Err(format!(
            "server overloaded ({queued} queued, capacity {capacity}); retry later"
        )),
        Response::Expired {
            waited_ms,
            deadline_ms,
        } => Err(format!(
            "request expired in queue ({waited_ms} ms waited, {deadline_ms} ms deadline)"
        )),
    }
}
