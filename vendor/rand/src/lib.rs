//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`rngs::SmallRng`]
//! (xoshiro256++ seeded through splitmix64), [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen`, `gen_range` and `gen_bool`.
//!
//! The streams differ from upstream `rand`'s, but every consumer in this
//! workspace only relies on determinism-for-a-seed, not on specific values.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The standard (full-type-range / unit-interval) distribution.
pub struct Standard;

/// A distribution producing values of `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types uniformly samplable by [`Rng::gen_range`].
///
/// A single blanket `SampleRange<T> for Range<T>` impl (rather than one
/// impl per integer type) lets inference unify untyped integer literals in
/// the range with the result type, matching upstream rand.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to `i128` (lossless for every implementor).
    fn to_i128(self) -> i128;
    /// Narrows from `i128`; the caller guarantees the value is in range.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        let span = (hi - lo) as u128;
        T::from_i128(lo + (rng.next_u64() as u128 % span) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        let (lo, hi) = (lo.to_i128(), hi.to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi - lo) as u128 + 1;
        T::from_i128(lo + (rng.next_u64() as u128 % span) as i128)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let f: f64 = Standard.sample(rng);
        self.start + f * (self.end - self.start)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // Expand the seed with the splitmix64 sequence, as upstream does.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..42);
            assert!((10..42).contains(&v));
            let w = rng.gen_range(1u64..=6);
            assert!((1..=6).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
