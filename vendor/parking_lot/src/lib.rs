//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's non-poisoning API surface
//! (`lock()` returns the guard directly). A poisoned lock — some thread
//! panicked while holding it — recovers the inner value, matching
//! parking_lot's behavior of not propagating poison.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Mutual exclusion primitive with a non-poisoning `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
