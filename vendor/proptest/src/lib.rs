//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(ProptestConfig::with_cases(N))]`), `prop_assert!` /
//! `prop_assert_eq!`, range and `any::<T>()` strategies, `Just`, tuple
//! strategies, `proptest::collection::vec`, and the `prop_map` /
//! `prop_flat_map` combinators.
//!
//! Semantics differ from upstream in two deliberate ways: there is no
//! shrinking (a failing case reports its inputs but is not minimized), and
//! case generation is seeded deterministically from the test's module path
//! and name so failures reproduce exactly on re-run.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Deterministic RNG driving strategy generation.
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// Seeds a generator for one test case from the test's identity.
        pub fn for_case(test_path: &str, case: u32) -> TestRng {
            // FNV-1a over the path keeps seeds stable across runs.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)),
            }
        }

        fn rng(&mut self) -> &mut SmallRng {
            &mut self.inner
        }
    }

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Feeds generated values into `f` to build a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let intermediate = self.base.generate(rng);
            (self.f)(intermediate).generate(rng)
        }
    }

    /// Strategy that always yields a clone of its value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy for "any value of `T`" under the standard distribution.
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    /// Builds the [`Any`] strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        rand::Standard: rand::Distribution<T>,
    {
        Any {
            _marker: PhantomData,
        }
    }

    impl<T> Strategy for Any<T>
    where
        rand::Standard: rand::Distribution<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.rng().gen()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.start..self.end)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(*self.start()..=*self.end())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Sizes accepted by [`crate::collection::vec`]: a fixed length or a
    /// half-open range of lengths.
    pub trait VecLen {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl VecLen for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl VecLen for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.start..self.end)
        }
    }

    impl VecLen for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(*self.start()..=*self.end())
        }
    }

    /// Strategy produced by [`crate::collection::vec`].
    pub struct VecStrategy<S, L> {
        pub(crate) element: S,
        pub(crate) len: L,
    }

    impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, VecLen, VecStrategy};

    /// Strategy for a `Vec` whose elements come from `element` and whose
    /// length is `len` (a fixed `usize` or a range of lengths).
    pub fn vec<S: Strategy, L: VecLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// A failed property-test case (what `prop_assert!` produces).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given reason.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Number of cases to run per property (no other knobs supported).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// How many generated cases each property test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

/// The usual `use proptest::prelude::*` imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test; on failure the enclosing
/// function returns `Err(TestCaseError)` (so it composes with `?`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a property test (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Asserts inequality inside a property test (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                l, r
            )));
        }
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$attr:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::strategy::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("property `{}` failed on case {}: {}", stringify!($name), __case, e);
                }
            }
        }
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in any::<u64>()) {
            prop_assert!((3..17).contains(&x));
            let _ = y;
        }

        #[test]
        fn composition_works(v in (2usize..6).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(1u32..5, n)).prop_map(|(n, xs)| (n, xs))
        })) {
            let (n, xs) = v;
            prop_assert_eq!(xs.len(), n);
            prop_assert!(xs.iter().all(|&x| (1..5).contains(&x)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::{Strategy, TestRng};
        let s = 0u64..1_000_000;
        let mut a = TestRng::for_case("x::y", 7);
        let mut b = TestRng::for_case("x::y", 7);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
