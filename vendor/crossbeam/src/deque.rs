//! Offline stand-in for `crossbeam-deque`.
//!
//! Provides the `Injector` / `Worker` / `Stealer` work-stealing API over
//! mutex-protected queues. The real crate's lock-free Chase-Lev deques are
//! a throughput optimization; for the coarse-grained jobs this workspace
//! schedules (whole scheduling-region compilations, each milliseconds of
//! work), a mutex per queue is contention-free in practice and keeps the
//! stand-in obviously correct. The API is a faithful subset: `steal`
//! operations return [`Steal`] (with a `Retry` variant callers must loop
//! on, even though this implementation never produces it), and
//! [`Injector::steal_batch_and_pop`] moves a batch into the destination
//! worker while handing one task back, as upstream does.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The operation lost a race and should be retried. (Never produced by
    /// this mutex-backed stand-in, but part of the API contract: callers
    /// must loop on it.)
    Retry,
}

impl<T> Steal<T> {
    /// Returns `true` if the queue was empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// Returns the stolen task, if one was stolen.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A global FIFO queue all threads push to and steal from.
#[derive(Debug)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Injector<T> {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Injector<T> {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a task onto the back of the queue.
    pub fn push(&self, task: T) {
        lock(&self.queue).push_back(task);
    }

    /// Steals one task from the front of the queue.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steals a batch of tasks, moving all but the first into `dest`'s
    /// local queue and returning the first. Takes roughly half the queue
    /// (at least one task), like upstream.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = lock(&self.queue);
        let Some(first) = q.pop_front() else {
            return Steal::Empty;
        };
        let extra = q.len() / 2;
        if extra > 0 {
            let mut d = lock(&dest.queue);
            d.extend(q.drain(..extra));
        }
        Steal::Success(first)
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }
}

/// A thread-local FIFO queue with work-stealing access for other threads.
#[derive(Debug)]
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates an empty FIFO worker queue.
    pub fn new_fifo() -> Worker<T> {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes a task onto the queue.
    pub fn push(&self, task: T) {
        lock(&self.queue).push_back(task);
    }

    /// Pops a task from the front of the queue (FIFO order).
    pub fn pop(&self) -> Option<T> {
        lock(&self.queue).pop_front()
    }

    /// Creates a stealer handle other threads can take tasks through.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }
}

/// A handle for stealing tasks from another thread's [`Worker`].
#[derive(Debug)]
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals one task from the front of the worker's queue.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Whether the worker's queue is currently empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        for i in 0..4 {
            inj.push(i);
        }
        assert_eq!(inj.len(), 4);
        for i in 0..4 {
            assert_eq!(inj.steal().success(), Some(i));
        }
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn batch_steal_moves_half_and_pops_one() {
        let inj = Injector::new();
        for i in 0..9 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        // Pops 0, moves half of the remaining 8 (= 4 tasks) locally.
        assert_eq!(inj.steal_batch_and_pop(&w).success(), Some(0));
        assert_eq!(w.len(), 4);
        assert_eq!(inj.len(), 4);
        assert_eq!(w.pop(), Some(1));
        assert!(Injector::<u32>::new().steal_batch_and_pop(&w).is_empty());
    }

    #[test]
    fn stealer_drains_worker_across_threads() {
        let w = Worker::new_fifo();
        for i in 0..100u32 {
            w.push(i);
        }
        let stealer = w.stealer();
        let total = std::sync::Mutex::new(0u32);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Steal::Success(v) = stealer.steal() {
                        *total.lock().unwrap() += v;
                    }
                });
            }
        });
        assert!(w.is_empty());
        assert_eq!(total.into_inner().unwrap(), (0..100).sum());
    }
}
