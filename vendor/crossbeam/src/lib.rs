//! Offline stand-in for `crossbeam`.
//!
//! Provides the `crossbeam::scope` / `Scope::spawn` API the workspace uses,
//! implemented on `std::thread::scope` (stable since Rust 1.63), plus the
//! [`deque`] work-stealing queues (`Injector`/`Worker`/`Stealer`). As in
//! crossbeam, the closure passed to [`Scope::spawn`] receives the scope
//! itself (for nested spawns), and [`scope`] returns `Err` with the panic
//! payload if any thread panicked.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod deque;

/// A scope for spawning threads that borrow from the enclosing stack frame.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped thread, joined automatically at scope exit.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result or panic payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread inside the scope; the closure receives the scope.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Runs `f` with a thread scope; all spawned threads are joined before
/// returning. Returns `Err` with the panic payload if anything panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::Mutex::new(0u64);
        super::scope(|scope| {
            for chunk in data.chunks(2) {
                scope.spawn(|_| {
                    *total.lock().unwrap() += chunk.iter().sum::<u64>();
                });
            }
        })
        .expect("no panics");
        assert_eq!(total.into_inner().unwrap(), 10);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
