//! Offline stand-in for `criterion`.
//!
//! Supports the subset the workspace's micro-benchmarks use:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a short warm-up, then a
//! fixed measurement batch, and prints mean time per iteration — no
//! statistics, plots, or baseline comparisons.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for benchmarks.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched setup output is sized; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the measurement iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh `setup` output each iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    measurement_iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_iters: 30,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Warm-up pass, unmeasured.
        let mut warm = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        f(&mut warm);

        let mut b = Bencher {
            iters: self.measurement_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        println!(
            "bench {name}: {:.3} us/iter ({} iters)",
            per_iter * 1e6,
            b.iters
        );
        self
    }

    /// Hook for criterion's config API; returns self unchanged.
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
