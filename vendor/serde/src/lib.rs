//! Offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as forward
//! compatibility for a future JSON export; nothing serializes today. The
//! traits here are empty markers with blanket impls, and the derive macros
//! (re-exported from the vendored `serde_derive`) expand to nothing. Trait
//! names and macro names live in separate namespaces, so both re-exports
//! can coexist exactly as in real serde.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
