//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of config
//! and result types but never actually serializes them (there is no
//! serde_json in the tree). The vendored `serde` crate blanket-implements
//! its marker traits, so these derives only need to accept the input and
//! emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
